//===- vliw/Schedule.cpp - Global scheduling + pipelining -------------------===//

#include "vliw/Schedule.h"

#include "analysis/Liveness.h"
#include "analysis/MemAlias.h"
#include "cfg/CfgEdit.h"
#include "cfg/Dominators.h"
#include "cfg/Loops.h"
#include "profile/ProfileData.h"
#include "vliw/Rename.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

using namespace vsc;

namespace {

/// Callees that neither read nor write user memory (I/O builtins).
bool isMemoryInertCall(const Instr &I) {
  return I.isCall() && (I.Sym == "print_int" || I.Sym == "print_char" ||
                        I.Sym == "read_int");
}

//===----------------------------------------------------------------------===//
// Issue-cost engine (mirrors sim/Simulator.cpp's issue rules)
//===----------------------------------------------------------------------===//

class IssueEngine {
public:
  explicit IssueEngine(const MachineModel &MM) : MM(MM) {}

  /// Issue cycle \p I would get right now, without committing.
  uint64_t tryIssue(const Instr &I) const {
    uint64_t Earliest = std::max(PrevIssue, FetchFloor);
    if (!I.isBranch())
      Earliest = std::max(Earliest, operandReady(I));
    if (Earliest < PendingResolve && SpecBudget == 0)
      Earliest = PendingResolve;
    // Unit contention.
    if (MM.unitOf(I) == UnitKind::Fxu) {
      if (FxuCycle == Earliest && FxuCount >= MM.FxuWidth)
        return Earliest + 1;
    } else if (MM.unitOf(I) == UnitKind::Bu) {
      if (BuCycle == Earliest && BuCount >= MM.BuWidth)
        return Earliest + 1;
    }
    return Earliest;
  }

  /// Issues \p I (with branch direction \p Taken) and returns its cycle.
  uint64_t issue(const Instr &I, bool Taken) {
    uint64_t Earliest = std::max(PrevIssue, FetchFloor);
    if (!I.isBranch())
      Earliest = std::max(Earliest, operandReady(I));
    if (Earliest < PendingResolve) {
      if (SpecBudget == 0)
        Earliest = PendingResolve;
      else
        --SpecBudget;
    }
    uint64_t C = Earliest;
    if (MM.unitOf(I) == UnitKind::Fxu) {
      if (FxuCycle == C && FxuCount >= MM.FxuWidth)
        ++C;
      if (FxuCycle != C) {
        FxuCycle = C;
        FxuCount = 0;
      }
      ++FxuCount;
    } else if (MM.unitOf(I) == UnitKind::Bu) {
      if (BuCycle == C && BuCount >= MM.BuWidth)
        ++C;
      if (BuCycle != C) {
        BuCycle = C;
        BuCount = 0;
      }
      ++BuCount;
    }

    if (I.Op == Opcode::BT || I.Op == Opcode::BF) {
      uint64_t CrReady = readyOf(I.Src1);
      uint64_t Resolve = std::max(C, CrReady);
      if (Taken)
        FetchFloor = std::max(
            FetchFloor, std::max(C, CrReady + MM.TakenBranchRedirect));
      else if (Resolve > C) {
        PendingResolve = Resolve;
        SpecBudget = MM.SpecWindow;
      }
      LastCondResolve = Resolve;
      SinceCondBranch = 0;
    } else if (I.Op == Opcode::BCT) {
      uint64_t Resolve = std::max(C, readyOf(Reg::ctr()));
      FetchFloor = std::max(FetchFloor, Resolve);
      LastCondResolve = Resolve;
      SinceCondBranch = 0;
    } else if (I.Op == Opcode::B) {
      if (SinceCondBranch < MM.ExpansionObjective)
        FetchFloor = std::max(
            FetchFloor, std::max(C, LastCondResolve + MM.TakenBranchRedirect));
      ++SinceCondBranch;
    } else if (I.isCall() || I.isRet()) {
      FetchFloor = std::max(FetchFloor, C + MM.TakenBranchRedirect);
      SinceCondBranch = 0;
    } else {
      ++SinceCondBranch;
    }

    // Commit defs.
    Defs.clear();
    I.collectDefs(Defs);
    for (Reg D : Defs)
      Ready[D] = C + MM.latencyOf(I);

    PrevIssue = C;
    return C;
  }

  uint64_t lastIssue() const { return PrevIssue; }

private:
  uint64_t readyOf(Reg R) const {
    auto It = Ready.find(R);
    return It == Ready.end() ? 0 : It->second;
  }

  uint64_t operandReady(const Instr &I) const {
    Uses.clear();
    I.collectUses(Uses);
    uint64_t T = 0;
    for (Reg U : Uses)
      T = std::max(T, readyOf(U));
    return T;
  }

  const MachineModel &MM;
  std::unordered_map<Reg, uint64_t, RegHash> Ready;
  uint64_t PrevIssue = 0, FetchFloor = 1;
  uint64_t FxuCycle = 0, BuCycle = 0;
  unsigned FxuCount = 0, BuCount = 0;
  uint64_t PendingResolve = 0;
  unsigned SpecBudget = 0;
  uint64_t LastCondResolve = 0;
  uint64_t SinceCondBranch = 1u << 20;
  mutable std::vector<Reg> Uses;
  std::vector<Reg> Defs;
};

//===----------------------------------------------------------------------===//
// Dependences
//===----------------------------------------------------------------------===//

/// \returns the scope an alias query between Ins[I] and Ins[J] (I < J,
/// same straight-line sequence) may be issued under. Both accesses sit in
/// one execution of the block; SameExecution additionally promises that no
/// instruction between them redefines a base register they share, which is
/// what the same-base displacement reasoning of the syntactic tier needs.
AliasScope memScopeFor(const std::vector<Instr> &Ins, size_t I, size_t J) {
  if (!Ins[I].isMemAccess() || !Ins[J].isMemAccess())
    return AliasScope::SameExecution; // no memory query will be issued
  Reg B = Ins[I].memBase();
  if (B != Ins[J].memBase())
    return AliasScope::SameExecution; // no shared base to redefine
  std::vector<Reg> Defs;
  for (size_t K = I + 1; K < J; ++K) {
    Defs.clear();
    Ins[K].collectDefs(Defs);
    if (std::find(Defs.begin(), Defs.end(), B) != Defs.end())
      return AliasScope::CrossExecution;
  }
  return AliasScope::SameExecution;
}

/// \returns true if \p Later must not move above \p Earlier.
bool dependsOn(const Instr &Later, const Instr &Earlier, AliasScope Scope,
               const AliasAnalysis *AA) {
  std::vector<Reg> EDefs, EUses, LDefs, LUses;
  Earlier.collectDefs(EDefs);
  Earlier.collectUses(EUses);
  Later.collectDefs(LDefs);
  Later.collectUses(LUses);
  auto Intersects = [](const std::vector<Reg> &A, const std::vector<Reg> &B) {
    for (Reg R : A)
      if (std::find(B.begin(), B.end(), R) != B.end())
        return true;
    return false;
  };
  if (Intersects(EDefs, LUses)) // flow
    return true;
  if (Intersects(EUses, LDefs)) // anti
    return true;
  if (Intersects(EDefs, LDefs)) // output
    return true;

  // Memory and call ordering.
  auto IsOpaqueCall = [](const Instr &I) {
    return I.isCall() && !isMemoryInertCall(I);
  };
  if (Earlier.isCall() && Later.isCall())
    return true; // output order of I/O, and opaque side effects
  if ((IsOpaqueCall(Earlier) && Later.isMemAccess()) ||
      (IsOpaqueCall(Later) && Earlier.isMemAccess()))
    return true;
  if (Earlier.isMemAccess() && Later.isMemAccess()) {
    if (Earlier.IsVolatile && Later.IsVolatile)
      return true; // volatile order is architectural
    if (Earlier.isStore() || Later.isStore()) {
      AliasResult R = AA ? AA->alias(Earlier, Later, Scope)
                         : alias(Earlier, Later, Scope);
      if (R != AliasResult::NoAlias)
        return true;
    }
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Local list scheduling
//===----------------------------------------------------------------------===//

struct Dag {
  std::vector<std::vector<unsigned>> Preds; // indices of required earlier ops
  std::vector<unsigned> Height;
};

Dag buildDag(const std::vector<Instr> &Ins, size_t N, const MachineModel &MM,
             const AliasAnalysis *AA) {
  Dag D;
  D.Preds.assign(N, {});
  D.Height.assign(N, 0);
  for (size_t J = 0; J != N; ++J)
    for (size_t I = 0; I != J; ++I)
      if (dependsOn(Ins[J], Ins[I], memScopeFor(Ins, I, J), AA))
        D.Preds[J].push_back(static_cast<unsigned>(I));
  // Heights: latency-weighted longest path to the end of the block, plus a
  // bonus for compares feeding any terminator of the block (they want to
  // run early so the dependent branch resolves in time).
  for (size_t J = N; J-- > 0;) {
    unsigned H = MM.latencyOf(Ins[J]);
    if (Ins[J].Op == Opcode::C || Ins[J].Op == Opcode::CI)
      for (size_t T = N; T != Ins.size(); ++T)
        if (Ins[T].isCondBranch() && Ins[T].Src1 == Ins[J].Dst)
          H += MM.TakenBranchRedirect;
    D.Height[J] = H;
  }
  for (size_t J = N; J-- > 0;)
    for (unsigned P : D.Preds[J])
      D.Height[P] =
          std::max(D.Height[P], D.Height[J] + MM.latencyOf(Ins[P]));
  return D;
}

/// Greedy cycle-directed list schedule of Ins[0..N); \returns new order of
/// indices.
std::vector<unsigned> listSchedule(const std::vector<Instr> &Ins, size_t N,
                                   const MachineModel &MM,
                                   const AliasAnalysis *AA) {
  Dag D = buildDag(Ins, N, MM, AA);
  std::vector<unsigned> Order;
  std::vector<bool> Scheduled(N, false);
  IssueEngine Engine(MM);
  for (size_t Step = 0; Step != N; ++Step) {
    int Best = -1;
    uint64_t BestCycle = ~0ULL;
    for (size_t J = 0; J != N; ++J) {
      if (Scheduled[J])
        continue;
      bool Ready = true;
      for (unsigned P : D.Preds[J])
        if (!Scheduled[P])
          Ready = false;
      if (!Ready)
        continue;
      uint64_t C = Engine.tryIssue(Ins[J]);
      if (Best < 0 || C < BestCycle ||
          (C == BestCycle &&
           D.Height[J] > D.Height[static_cast<size_t>(Best)]) ||
          (C == BestCycle &&
           D.Height[J] == D.Height[static_cast<size_t>(Best)] &&
           J < static_cast<size_t>(Best))) {
        Best = static_cast<int>(J);
        BestCycle = C;
      }
    }
    assert(Best >= 0 && "dependence cycle in a basic block?");
    Scheduled[static_cast<size_t>(Best)] = true;
    Engine.issue(Ins[static_cast<size_t>(Best)], /*Taken=*/false);
    Order.push_back(static_cast<unsigned>(Best));
  }
  return Order;
}

} // namespace

bool vsc::scheduleBlock(BasicBlock &BB, const MachineModel &MM,
                        const AliasAnalysis *AA) {
  size_t N = BB.firstTerminatorIdx();
  if (N < 2)
    return false;
  std::vector<unsigned> Order = listSchedule(BB.instrs(), N, MM, AA);
  bool Identity = true;
  for (size_t I = 0; I != N; ++I)
    if (Order[I] != I)
      Identity = false;
  if (Identity)
    return false;
  std::vector<Instr> NewIns;
  NewIns.reserve(BB.size());
  for (unsigned Idx : Order)
    NewIns.push_back(std::move(BB.instrs()[Idx]));
  for (size_t I = N; I != BB.size(); ++I)
    NewIns.push_back(std::move(BB.instrs()[I]));
  BB.instrs() = std::move(NewIns);
  return true;
}

unsigned vsc::estimateBlockCycles(const BasicBlock &BB,
                                  const MachineModel &MM) {
  IssueEngine Engine(MM);
  for (const Instr &I : BB.instrs())
    Engine.issue(I, /*Taken=*/I.Op == Opcode::B || I.Op == Opcode::BCT);
  return static_cast<unsigned>(Engine.lastIssue());
}

unsigned
vsc::estimateSteadyStateCycles(const std::vector<BasicBlock *> &Chain,
                               const MachineModel &MM) {
  if (Chain.empty())
    return 0;
  const std::string &HeaderLabel = Chain.front()->label();
  // Linear trace of one iteration: internal conditional exits untaken,
  // internal unconditional chaining taken, back edge taken.
  std::vector<std::pair<const Instr *, bool>> Trace;
  for (size_t BI = 0; BI != Chain.size(); ++BI) {
    for (const Instr &I : Chain[BI]->instrs()) {
      bool Taken = false;
      if (I.Op == Opcode::B)
        Taken = true;
      else if (I.isCondBranch())
        Taken = I.Target == HeaderLabel || I.Target == Chain[BI]->label() ||
                (BI + 1 < Chain.size() &&
                 I.Target == Chain[BI + 1]->label());
      Trace.push_back({&I, Taken});
    }
  }
  IssueEngine Engine(MM);
  uint64_t EndOfCopy[3] = {0, 0, 0};
  for (int Copy = 0; Copy != 3; ++Copy) {
    for (auto &[I, Taken] : Trace)
      Engine.issue(*I, Taken);
    EndOfCopy[Copy] = Engine.lastIssue();
  }
  return static_cast<unsigned>(EndOfCopy[2] - EndOfCopy[1]);
}

std::vector<VliwWord> vsc::packIntoVliwWords(const BasicBlock &BB,
                                             const MachineModel &MM) {
  IssueEngine Engine(MM);
  std::vector<VliwWord> Words;
  for (size_t I = 0; I != BB.size(); ++I) {
    const Instr &Ins = BB.instrs()[I];
    uint64_t C = Engine.issue(
        Ins, /*Taken=*/Ins.Op == Opcode::B || Ins.Op == Opcode::BCT);
    if (Words.empty() || Words.back().Cycle != C)
      Words.push_back(VliwWord{C, {}});
    Words.back().Ops.push_back(I);
  }
  return Words;
}

std::string vsc::formatAsVliw(const BasicBlock &BB, const MachineModel &MM) {
  std::string Out = BB.label() + ":\n";
  for (const VliwWord &W : packIntoVliwWords(BB, MM)) {
    char Buf[16];
    std::snprintf(Buf, sizeof(Buf), "  [%3llu] ",
                  static_cast<unsigned long long>(W.Cycle));
    Out += Buf;
    for (size_t K = 0; K != W.Ops.size(); ++K) {
      if (K)
        Out += "  ||  ";
      Out += BB.instrs()[W.Ops[K]].str();
    }
    Out += "\n";
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Global scheduling: cross-block upward motion
//===----------------------------------------------------------------------===//

namespace {

/// Attempts one hoist into \p P from one of its successors. \returns true
/// if an instruction moved (analyses must be rebuilt).
bool hoistOnce(Function &F, const Module &M, const MachineModel &MM,
               BasicBlock *P, const Cfg &G, const Liveness &Live,
               const LoopInfo &LI, const GlobalScheduleOptions &Opts,
               const AliasAnalysis *AA) {
  const std::vector<CfgEdge> &Succs = G.succs(P);
  if (Succs.empty())
    return false;
  bool PEndsConditional = false;
  {
    const Instr *Term = P->terminator();
    size_t FirstTerm = P->firstTerminatorIdx();
    if (FirstTerm < P->size() && P->instrs()[FirstTerm].isCondBranch())
      PEndsConditional = true;
    (void)Term;
  }
  if (PEndsConditional && !Opts.SpeculativeHoist)
    return false;

  // With a profile, try a clearly-hot successor first. Bucketised so that
  // near-balanced probabilities (profile noise) do not perturb the
  // deterministic hoist order.
  std::vector<CfgEdge> OrderedSuccs = Succs;
  if (Opts.Profile) {
    auto Bucket = [&](const CfgEdge &E) {
      double P2 = Opts.Profile->edgeProbability(F, E);
      return P2 > 0.75 ? 2 : P2 < 0.25 ? 0 : 1;
    };
    std::stable_sort(OrderedSuccs.begin(), OrderedSuccs.end(),
                     [&](const CfgEdge &A, const CfgEdge &B) {
                       return Bucket(A) > Bucket(B);
                     });
  }

  std::vector<Reg> Defs, Uses, Tmp;
  for (const CfgEdge &E : OrderedSuccs) {
    BasicBlock *S = E.To;
    // Only clearly-unlikely paths are treated as speculative-and-unwanted
    // ("if an operation is present only on a less frequently executed path
    // it is considered speculative"); balanced branches keep full
    // speculation.
    if (Opts.Profile && PEndsConditional &&
        Opts.Profile->edgeProbability(F, E) < 0.2)
      continue;
    if (S == P)
      continue;
    // Joins are legal hoist sources when the paper's bookkeeping copies go
    // into every other predecessor ("making bookkeeping copies for edges
    // that join the paths of code motion"): collect the predecessor set
    // and prove legality for each one.
    std::vector<BasicBlock *> AllPreds;
    for (BasicBlock *Q : G.preds(S))
      if (std::find(AllPreds.begin(), AllPreds.end(), Q) == AllPreds.end())
        AllPreds.push_back(Q);
    if (AllPreds.empty() || AllPreds.size() > Opts.MaxJoinPreds)
      continue;
    // Hoisting into a latch would rotate code across the back edge — that
    // is pipeline scheduling's job, with its own legality conditions.
    if (LI.loopFor(S) && LI.loopFor(S)->Header == S)
      continue;
    bool PredsOk = true;
    for (BasicBlock *Q : AllPreds)
      if (!G.isReachable(Q) || LI.loopFor(Q) != LI.loopFor(S))
        PredsOk = false;
    if (!PredsOk || LI.loopFor(S) != LI.loopFor(P))
      continue;

    // Per-predecessor legality of placing \p Cand at Q's end.
    auto LegalInPred = [&](BasicBlock *Q, const Instr &Cand) {
      size_t QTerm = Q->firstTerminatorIdx();
      bool QConditional =
          QTerm < Q->size() && Q->instrs()[QTerm].isCondBranch();
      if (QConditional) {
        if (!Opts.SpeculativeHoist)
          return false;
        bool Safe = Cand.isSafeToSpeculate() ||
                    (Cand.isLoad() &&
                     (AA ? AA->safeSpeculativeLoad(Cand, &M)
                         : isSafeSpeculativeLoad(Cand, &M)));
        if (!Safe)
          return false;
        // Destinations must be dead on Q's other successors.
        Defs.clear();
        Cand.collectDefs(Defs);
        for (const CfgEdge &Other : G.succs(Q)) {
          if (Other.To == S)
            continue;
          for (Reg D : Defs)
            if (Live.isLiveIn(Other.To, D))
              return false;
        }
      } else if (Cand.hasSideEffects() || Cand.isCall()) {
        // Even non-speculative motion keeps calls/stores put (they pin
        // the trace for the other passes).
        return false;
      }
      // Q's terminator suffix must not interfere.
      Defs.clear();
      Cand.collectDefs(Defs);
      Uses.clear();
      Cand.collectUses(Uses);
      for (size_t K = Q->firstTerminatorIdx(); K != Q->size(); ++K) {
        const Instr &T = Q->instrs()[K];
        Tmp.clear();
        T.collectUses(Tmp);
        for (Reg R : Tmp)
          if (std::find(Defs.begin(), Defs.end(), R) != Defs.end())
            return false;
        Tmp.clear();
        T.collectDefs(Tmp);
        for (Reg R : Tmp) {
          if (std::find(Uses.begin(), Uses.end(), R) != Uses.end())
            return false;
          if (std::find(Defs.begin(), Defs.end(), R) != Defs.end())
            return false;
        }
      }
      return true;
    };

    size_t STerm = S->firstTerminatorIdx();
    for (size_t J = 0; J != STerm; ++J) {
      const Instr &Cand = S->instrs()[J];
      // Must be movable to the top of S.
      bool Blocked = false;
      for (size_t K = 0; K != J && !Blocked; ++K)
        if (dependsOn(Cand, S->instrs()[K], memScopeFor(S->instrs(), K, J),
                      AA))
          Blocked = true;
      if (Blocked)
        continue;
      bool AllLegal = true;
      for (BasicBlock *Q : AllPreds)
        if (!LegalInPred(Q, Cand))
          AllLegal = false;
      if (!AllLegal)
        continue;

      // Profitability: the candidate must fit in an idle slot of the
      // triggering predecessor P — the probe re-schedules the block so the
      // candidate may land in a stall hole rather than at the end.
      BasicBlock Probe("probe");
      Probe.instrs() = P->instrs();
      scheduleBlock(Probe, MM, AA);
      unsigned CostBefore = estimateBlockCycles(Probe, MM);
      Probe.instrs().insert(Probe.instrs().begin() +
                                static_cast<long>(Probe.firstTerminatorIdx()),
                            Cand);
      scheduleBlock(Probe, MM, AA);
      unsigned CostAfter = estimateBlockCycles(Probe, MM);
      if (CostAfter > CostBefore)
        continue;

      // Move: the op goes into every predecessor (one real motion plus
      // bookkeeping copies), then leaves S.
      Instr Moved = Cand;
      S->instrs().erase(S->instrs().begin() + static_cast<long>(J));
      for (BasicBlock *Q : AllPreds) {
        Instr Copy = Moved;
        if (Q != AllPreds.front())
          F.assignId(Copy);
        Q->instrs().insert(Q->instrs().begin() +
                               static_cast<long>(Q->firstTerminatorIdx()),
                           std::move(Copy));
        scheduleBlock(*Q, MM, AA);
      }
      return true;
    }
  }
  return false;
}

} // namespace

bool vsc::globalSchedule(Function &F, const MachineModel &MM,
                         const Module &M, const GlobalScheduleOptions &Opts,
                         FunctionAnalyses &FA) {
  // Local scheduling reorders only the non-terminator prefix of each
  // block, which every cached analysis survives (alias facts are keyed by
  // instruction id, and a dependence-safe reorder never changes the value
  // a base register holds at any given instruction).
  bool Any = false;
  {
    const AliasAnalysis *AA =
        Opts.FlowAlias ? &FA.aliasAnalysis() : nullptr;
    for (auto &BB : F.blocks())
      Any |= scheduleBlock(*BB, MM, AA);
  }

  std::unordered_map<const BasicBlock *, unsigned> HoistedInto;
  for (unsigned Guard = 0; Guard < 256; ++Guard) {
    // Analyses come from the cache: on rounds where no hoist landed (and
    // after the final round) nothing is rebuilt. This also fixes the old
    // duplicate Dominators construction here vs pipelineInnermostLoops —
    // both now share one cached tree until a real CFG edit.
    const Cfg &G = FA.cfg();
    const LoopInfo &LI = FA.loops();
    const Liveness &Live = FA.liveness();
    const AliasAnalysis *AA =
        Opts.FlowAlias ? &FA.aliasAnalysis() : nullptr;
    bool Changed = false;
    for (auto &BBPtr : F.blocks()) {
      BasicBlock *P = BBPtr.get();
      if (!G.isReachable(P))
        continue;
      if (HoistedInto[P] >= Opts.MaxHoistPerBlock)
        continue;
      if (hoistOnce(F, M, MM, P, G, Live, LI, Opts, AA)) {
        // The hoist erased and inserted instructions across blocks.
        FA.invalidateAll();
        ++HoistedInto[P];
        Changed = true;
        Any = true;
        break;
      }
    }
    if (!Changed)
      break;
  }
  return Any;
}

bool vsc::globalSchedule(Function &F, const MachineModel &MM,
                         const Module &M,
                         const GlobalScheduleOptions &Opts) {
  FunctionAnalyses FA(F);
  return globalSchedule(F, MM, M, Opts, FA);
}

//===----------------------------------------------------------------------===//
// Enhanced pipeline scheduling (rotation across the back edge)
//===----------------------------------------------------------------------===//

namespace {

struct ChainSnapshot {
  std::vector<std::vector<Instr>> Blocks;
  std::vector<Instr> Preheader;
};

ChainSnapshot snapshotChain(const std::vector<BasicBlock *> &Chain,
                            const BasicBlock *PH) {
  ChainSnapshot S;
  for (BasicBlock *BB : Chain)
    S.Blocks.push_back(BB->instrs());
  S.Preheader = PH->instrs();
  return S;
}

void restoreChain(const ChainSnapshot &S,
                  const std::vector<BasicBlock *> &Chain, BasicBlock *PH) {
  for (size_t I = 0; I != Chain.size(); ++I)
    Chain[I]->instrs() = S.Blocks[I];
  PH->instrs() = S.Preheader;
}

/// Flattens the chain's instructions (terminators included) in layout
/// order — the body shape pipelining/MinII.h's dependence graph and the
/// exact scheduler's cycle vector are indexed by.
std::vector<Instr> flattenChain(const std::vector<BasicBlock *> &Chain) {
  std::vector<Instr> Body;
  for (BasicBlock *BB : Chain)
    for (const Instr &I : BB->instrs())
      Body.push_back(I);
  return Body;
}

/// Emits the exact schedule: each block's non-terminator prefix is
/// reordered by (exact cycle, original index). Every intra-iteration
/// dependence edge i -> j forces cycle(j) >= cycle(i), and the stable tie
/// break keeps the original order at equal cycles, so any dependent pair
/// keeps its relative order — the permutation is dependence-safe by
/// construction of the schedule.
void reorderByExactCycles(const std::vector<BasicBlock *> &Chain,
                          const std::vector<unsigned> &Cycle) {
  size_t Base = 0;
  for (BasicBlock *BB : Chain) {
    size_t N = BB->firstTerminatorIdx();
    std::vector<unsigned> Idx(N);
    for (size_t I = 0; I != N; ++I)
      Idx[I] = static_cast<unsigned>(I);
    std::stable_sort(Idx.begin(), Idx.end(), [&](unsigned A, unsigned B) {
      return Cycle[Base + A] < Cycle[Base + B];
    });
    std::vector<Instr> NewIns;
    NewIns.reserve(BB->size());
    for (unsigned I : Idx)
      NewIns.push_back(std::move(BB->instrs()[I]));
    for (size_t I = N; I != BB->size(); ++I)
      NewIns.push_back(std::move(BB->instrs()[I]));
    BB->instrs() = std::move(NewIns);
    Base += BB->size();
  }
}

/// One rotation attempt: legality-checks the header-top operation against
/// the CURRENT state (liveness and alias facts come fresh from \p FA), and
/// on success moves it to the latch bottom with a preheader copy,
/// reschedules the chain and reports the new steady-state estimate in
/// \p Now. \returns false (chain untouched) when no legal rotation exists.
/// The caller decides keep vs. restore through \p Snap and owns the cache
/// invalidation of a kept rotation. AA is fetched per attempt, so a moved
/// instruction is always queried against facts for its current position.
bool tryRotate(Function &F, const MachineModel &MM, const Module &M,
               const std::vector<BasicBlock *> &Chain, BasicBlock *PH,
               const std::vector<BasicBlock *> &TailExitTargets,
               bool FlowAlias, FunctionAnalyses &FA, ChainSnapshot &Snap,
               unsigned &Now) {
  BasicBlock *Header = Chain.front();
  if (Header->firstTerminatorIdx() == 0)
    return false;
  const Instr &Cand = Header->instrs().front();
  const AliasAnalysis *AA = FlowAlias ? &FA.aliasAnalysis() : nullptr;
  bool Safe = Cand.isSafeToSpeculate() ||
              (Cand.isLoad() && (AA ? AA->safeSpeculativeLoad(Cand, &M)
                                    : isSafeSpeculativeLoad(Cand, &M)));
  if (!Safe)
    return false;
  // Single definition of each dest within the body.
  std::vector<Reg> Defs, Tmp;
  Cand.collectDefs(Defs);
  for (Reg D : Defs) {
    unsigned N = 0;
    for (BasicBlock *BB : Chain)
      for (const Instr &I : BB->instrs()) {
        Tmp.clear();
        I.collectDefs(Tmp);
        if (std::find(Tmp.begin(), Tmp.end(), D) != Tmp.end())
          ++N;
      }
    if (N != 1)
      return false;
  }
  // Destinations dead at the tail exits (the rotated op runs once more
  // than the original on the final traversal).
  {
    const Liveness &Live = FA.liveness();
    for (BasicBlock *T : TailExitTargets)
      for (Reg D : Defs)
        if (Live.isLiveIn(T, D))
          return false;
  }

  Snap = snapshotChain(Chain, PH);

  // Rotate: header top -> latch bottom + preheader copy.
  Instr Rotated = Cand;
  Header->instrs().erase(Header->instrs().begin());
  BasicBlock *Latch = Chain.back();
  Latch->instrs().insert(Latch->instrs().begin() +
                             static_cast<long>(Latch->firstTerminatorIdx()),
                         Rotated);
  Instr PreCopy = Rotated;
  F.assignId(PreCopy);
  PH->instrs().insert(PH->instrs().begin() +
                          static_cast<long>(PH->firstTerminatorIdx()),
                      std::move(PreCopy));

  for (BasicBlock *BB : Chain)
    scheduleBlock(*BB, MM);
  Now = estimateSteadyStateCycles(Chain, MM);
  return true;
}

/// Pipelines one loop; \returns rotations the greedy heuristic kept. With
/// PO.Exact != Off the loop is additionally graded against the exact
/// modulo scheduler (and, in Apply mode, replaced by an exact-guided
/// kernel when that strictly improves the steady-state estimate).
unsigned pipelineLoop(Function &F, const MachineModel &MM, const Module &M,
                      Loop &L, const PipelineLoopOptions &PO,
                      FunctionAnalyses &FA) {
  const Cfg &G = FA.cfg();
  std::vector<BasicBlock *> Chain = loopChain(G, L);
  if (Chain.empty())
    return 0;
  // All back edges must come from the chain tail.
  for (BasicBlock *Latch : L.Latches)
    if (Latch != Chain.back())
      return 0;
  // Everything needed from L and G is captured up front: the first
  // analysis fetch after ensurePreheader's epoch bump drops the cached
  // LoopInfo that owns L (the block pointers themselves are stable, and
  // preheader insertion leaves the latch's successors alone).
  const std::string HeaderLabel = Chain.front()->label();
  std::vector<BasicBlock *> TailExitTargets;
  for (const CfgEdge &E : G.succs(Chain.back()))
    if (!L.contains(E.To))
      TailExitTargets.push_back(E.To);

  const bool Exact = PO.Exact != ExactPipelineMode::Off;
  LoopMinII MinRec;
  LoopDepGraph DepGraph;
  std::vector<Instr> OrigBody;
  if (Exact) {
    if (const LoopMinII *R =
            FA.minII(MM, PO.FlowAlias).forHeader(HeaderLabel))
      MinRec = *R;
    OrigBody = flattenChain(Chain);
    if (MinRec.Modeled && OrigBody.size() <= PO.ExactOpts.MaxBodyInstrs)
      DepGraph = buildLoopDepGraph(
          OrigBody, MM, PO.FlowAlias ? &FA.aliasAnalysis() : nullptr);
  }

  BasicBlock *PH = ensurePreheader(F, G, L);
  ChainSnapshot OrigSnap;
  if (Exact)
    OrigSnap = snapshotChain(Chain, PH);

  for (BasicBlock *BB : Chain)
    scheduleBlock(*BB, MM);
  unsigned Best = estimateSteadyStateCycles(Chain, MM);

  unsigned Kept = 0;
  for (unsigned Rot = 0; Rot != PO.MaxRotations; ++Rot) {
    ChainSnapshot Snap;
    unsigned Now = 0;
    if (!tryRotate(F, MM, M, Chain, PH, TailExitTargets, PO.FlowAlias, FA,
                   Snap, Now))
      break;
    if (Now >= Best) {
      restoreChain(Snap, Chain, PH);
      break;
    }
    Best = Now;
    ++Kept;
    // Instruction motion with no block edit: the epoch cannot catch it.
    FA.invalidateAll();
  }

  if (!Exact)
    return Kept;

  LoopPipelineRecord Rec;
  Rec.Function = F.name();
  Rec.Header = HeaderLabel;
  Rec.BodyInstrs =
      MinRec.Modeled ? MinRec.BodyInstrs : static_cast<unsigned>(OrigBody.size());
  Rec.ResMII = MinRec.ResMII;
  Rec.RecMII = MinRec.RecMII;
  Rec.HeuristicII = Best;
  Rec.Rotations = Kept;
  Rec.AchievedII = Best;

  // The exact sweep is capped at the heuristic's achieved II: the engine's
  // steady state induces a valid modulo schedule, so anything the search
  // finds at a lower II is a genuine gap, and finding one AT the cap
  // proves the heuristic optimal (gap 0).
  if (MinRec.Modeled && !OrigBody.empty() &&
      OrigBody.size() <= PO.ExactOpts.MaxBodyInstrs &&
      MinRec.minII() <= Best) {
    ExactSchedule ES = exactScheduleLoop(OrigBody, DepGraph, MM,
                                         MinRec.minII(), Best, PO.ExactOpts);
    Rec.ExactII = ES.II;
    Rec.Verdict = ES.Verdict;
    Rec.NodesExplored = ES.NodesExplored;

    if (PO.Exact == ExactPipelineMode::Apply && ES.II != 0 && ES.II < Best) {
      unsigned BestII = Best;
      ChainSnapshot BestSnap = snapshotChain(Chain, PH);
      // Candidate 1: emit the exact order — restore the pre-heuristic
      // body and lay each block out by exact cycles.
      restoreChain(OrigSnap, Chain, PH);
      reorderByExactCycles(Chain, ES.Cycle);
      unsigned NowA = estimateSteadyStateCycles(Chain, MM);
      if (NowA < BestII) {
        BestII = NowA;
        BestSnap = snapshotChain(Chain, PH);
        Rec.Applied = true;
      }
      restoreChain(BestSnap, Chain, PH);
      FA.invalidateAll();
      // Candidate 2: rotation lookahead through the existing rotation
      // machinery — unlike the greedy loop, a non-improving rotation is
      // kept as the starting point of the next one; the best state seen
      // is what gets installed.
      for (unsigned Rot = 0; Rot != PO.MaxRotations; ++Rot) {
        ChainSnapshot Snap;
        unsigned Now = 0;
        if (!tryRotate(F, MM, M, Chain, PH, TailExitTargets, PO.FlowAlias,
                       FA, Snap, Now))
          break;
        FA.invalidateAll();
        if (Now < BestII) {
          BestII = Now;
          BestSnap = snapshotChain(Chain, PH);
          Rec.Applied = true;
        }
      }
      restoreChain(BestSnap, Chain, PH);
      FA.invalidateAll();
      Rec.AchievedII = BestII;
    }
  }
  if (PO.Records)
    PO.Records->push_back(std::move(Rec));
  return Kept;
}

} // namespace

unsigned vsc::pipelineInnermostLoops(Function &F, const MachineModel &MM,
                                     const Module &M,
                                     const PipelineLoopOptions &Opts,
                                     FunctionAnalyses &FA) {
  unsigned Total = 0;
  std::unordered_set<std::string> Done;
  for (unsigned Guard = 0; Guard < 32; ++Guard) {
    // Loop discovery reads the shared cache (no more throwaway
    // Cfg/Dominators per loop): when pipelineLoop creates a preheader the
    // CFG epoch bump refreshes it automatically, and instruction-only
    // motion invalidates explicitly inside pipelineLoop.
    Loop *Todo = nullptr;
    for (Loop *L : FA.loops().innermostLoops())
      if (!Done.count(L->Header->label())) {
        Todo = L;
        break;
      }
    if (!Todo)
      break;
    Done.insert(Todo->Header->label());
    Total += pipelineLoop(F, MM, M, *Todo, Opts, FA);
  }
  return Total;
}

unsigned vsc::pipelineInnermostLoops(Function &F, const MachineModel &MM,
                                     const Module &M, unsigned MaxRotations,
                                     FunctionAnalyses &FA, bool FlowAlias) {
  PipelineLoopOptions Opts;
  Opts.MaxRotations = MaxRotations;
  Opts.FlowAlias = FlowAlias;
  return pipelineInnermostLoops(F, MM, M, Opts, FA);
}

unsigned vsc::pipelineInnermostLoops(Function &F, const MachineModel &MM,
                                     const Module &M,
                                     unsigned MaxRotations) {
  FunctionAnalyses FA(F);
  return pipelineInnermostLoops(F, MM, M, MaxRotations, FA);
}
