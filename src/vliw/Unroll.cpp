//===- vliw/Unroll.cpp - Loop unrolling -------------------------------------===//

#include "vliw/Unroll.h"

#include "cfg/CfgEdit.h"
#include "cfg/Dominators.h"

#include <cassert>
#include <unordered_map>
#include <unordered_set>

using namespace vsc;

bool vsc::unrollLoop(Function &F, const Loop &L, unsigned Factor) {
  if (Factor < 2)
    return false;

  // The loop blocks must be laid out contiguously so clones can replicate
  // the layout.
  size_t FirstIdx = F.indexOf(L.Header);
  for (size_t K = 0; K != L.Blocks.size(); ++K) {
    if (FirstIdx + K >= F.blocks().size())
      return false;
    if (!L.contains(F.blocks()[FirstIdx + K].get()))
      return false;
  }
  size_t EndIdx = FirstIdx + L.Blocks.size();

  // Make every control transfer out of a loop block explicit, so clones can
  // be placed anywhere without breaking fallthrough.
  for (size_t BI = FirstIdx; BI != EndIdx; ++BI) {
    BasicBlock *BB = F.blocks()[BI].get();
    if (!BB->canFallThrough())
      continue;
    assert(BI + 1 < F.blocks().size() && "verified functions cannot fall off");
    Instr Br;
    Br.Op = Opcode::B;
    Br.Target = F.blocks()[BI + 1]->label();
    F.assignId(Br);
    BB->instrs().push_back(std::move(Br));
  }

  std::unordered_set<std::string> LoopLabels;
  for (BasicBlock *BB : L.Blocks)
    LoopLabels.insert(BB->label());

  // Pre-assign header labels for each copy so back edges can be retargeted
  // forward.
  std::vector<std::string> CopyHeaderLabel(Factor);
  CopyHeaderLabel[0] = L.Header->label();

  // Clone copies 1..Factor-1, appended contiguously after the original span
  // in the same relative block order.
  size_t InsertAt = EndIdx;
  std::vector<std::unordered_map<std::string, std::string>> CopyLabels(
      Factor);
  for (unsigned K = 1; K != Factor; ++K) {
    // Labels for this copy.
    for (size_t BI = FirstIdx; BI != EndIdx; ++BI) {
      const std::string &Orig = F.blocks()[BI]->label();
      CopyLabels[K][Orig] = F.freshLabel(Orig + ".u" + std::to_string(K));
    }
    CopyHeaderLabel[K] = CopyLabels[K][L.Header->label()];
  }

  for (unsigned K = 1; K != Factor; ++K) {
    for (size_t BI = FirstIdx; BI != EndIdx; ++BI) {
      BasicBlock *Orig = F.blocks()[BI].get();
      BasicBlock *Clone = F.insertBlock(InsertAt++, "tmp");
      Clone->setLabel(CopyLabels[K].at(Orig->label()));
      for (const Instr &I : Orig->instrs()) {
        Instr C = I;
        F.assignId(C);
        if (C.isBranch()) {
          if (C.Target == L.Header->label()) {
            // Back edge: chain to the next copy (or wrap to the original).
            C.Target = K + 1 < Factor ? CopyHeaderLabel[K + 1]
                                      : L.Header->label();
          } else if (LoopLabels.count(C.Target)) {
            C.Target = CopyLabels[K].at(C.Target);
          }
          // Exits keep their targets.
        }
        Clone->instrs().push_back(std::move(C));
      }
    }
  }

  // Original back edges now feed copy 1.
  if (Factor > 1) {
    for (size_t BI = FirstIdx; BI != EndIdx; ++BI) {
      BasicBlock *BB = F.blocks()[BI].get();
      for (size_t Idx = BB->firstTerminatorIdx(); Idx != BB->size(); ++Idx) {
        Instr &I = BB->instrs()[Idx];
        if (I.isBranch() && I.Target == L.Header->label())
          I.Target = CopyHeaderLabel[1];
      }
    }
  }
  return true;
}

unsigned vsc::unrollInnermostLoops(Function &F, unsigned Factor,
                                   size_t MaxBodyInstrs,
                                   FunctionAnalyses &FA) {
  unsigned NumUnrolled = 0;
  // Loops are re-discovered after each unroll (the CFG changed); headers
  // already processed are remembered so a freshly unrolled loop is not
  // unrolled again.
  std::unordered_set<std::string> Done;
  for (unsigned Guard = 0; Guard < 32; ++Guard) {
    bool Changed = false;
    for (Loop *L : FA.loops().innermostLoops()) {
      if (Done.count(L->Header->label()))
        continue;
      size_t Body = 0;
      for (BasicBlock *BB : L->Blocks)
        Body += BB->size();
      if (Body == 0 || Body > MaxBodyInstrs)
        continue;
      Done.insert(L->Header->label());
      if (unrollLoop(F, *L, Factor)) {
        FA.invalidateAll();
        ++NumUnrolled;
        Changed = true;
        break;
      }
    }
    if (!Changed)
      break;
  }
  return NumUnrolled;
}

unsigned vsc::unrollInnermostLoops(Function &F, unsigned Factor,
                                   size_t MaxBodyInstrs) {
  FunctionAnalyses FA(F);
  return unrollInnermostLoops(F, Factor, MaxBodyInstrs, FA);
}
