//===- vliw/LoadStoreMotion.h - Speculative load/store motion -*- C++ -*-===//
///
/// \file
/// The paper's "Speculative Load/Store Motion Out of Loops": register-cache
/// a memory location accessed inside a loop — including accesses that are
/// only conditionally executed — when it is provably safe:
///
///  1. every load/store in the group uses the same base register, the same
///     displacement and the same operand length;
///  2. the base register is not written in the loop;
///  3. the location is not volatile;
///  4. the group cannot overlap any other memory reference (load, store or
///     call) within the loop or its inner loops — calls to I/O builtins
///     with known properties (print_int etc., which touch no user memory)
///     are exempt, the paper's "I/O library procedures" special case;
///  5. the access is safe to perform unconditionally: the location is a
///     named global of sufficient size (the paper's "load of the address
///     constant of an external variable of sufficient size" through the
///     TOC), a stack slot, or carries an explicit !safe annotation.
///
/// The transformation loads the location into a fresh register in the loop
/// preheader, rewrites in-loop loads as LR from it and stores as LR into
/// it, and stores the register back on every loop exit edge when the group
/// contained stores.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_VLIW_LOADSTOREMOTION_H
#define VSC_VLIW_LOADSTOREMOTION_H

#include "ir/Module.h"
#include "pm/Analysis.h"

namespace vsc {

/// Runs the pass on one function; \p M provides global sizes for the
/// safety check. \returns true if any group was moved. \p FlowAlias
/// selects the flow-sensitive tier for condition 4 (and the matching
/// flow-sensitive extension of condition 5's safety proof).
bool speculativeLoadStoreMotion(Function &F, const Module &M);
bool speculativeLoadStoreMotion(Function &F, const Module &M,
                                FunctionAnalyses &FA, bool FlowAlias = true);

/// Module-wide driver.
bool speculativeLoadStoreMotion(Module &M);

} // namespace vsc

#endif // VSC_VLIW_LOADSTOREMOTION_H
