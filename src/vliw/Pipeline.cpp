//===- vliw/Pipeline.cpp - Optimization pipelines ----------------------------===//

#include "vliw/Pipeline.h"

#include "audit/PassAudit.h"
#include "cfg/CfgEdit.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "opt/Classical.h"
#include "opt/Inline.h"
#include "opt/RegAlloc.h"
#include "profile/PdfLayout.h"
#include "profile/ProfileData.h"
#include "profile/Superblock.h"
#include "vliw/BlockExpansion.h"
#include "vliw/LimitedCombine.h"
#include "vliw/LoadStoreMotion.h"
#include "vliw/PrologTailor.h"
#include "vliw/Rename.h"
#include "vliw/Schedule.h"
#include "vliw/Unroll.h"
#include "vliw/Unspeculation.h"

#include <cstdio>
#include <cstdlib>

using namespace vsc;

PipelineOptions::PipelineOptions() : Machine(rs6000()) {}

const char *vsc::optLevelName(OptLevel L) {
  switch (L) {
  case OptLevel::None:
    return "none";
  case OptLevel::Classical:
    return "classical";
  case OptLevel::Vliw:
    return "vliw";
  }
  return "?";
}

namespace {

std::function<std::string()> &failureHook() {
  static std::function<std::string()> Hook;
  return Hook;
}

/// Prints the harness-supplied reproduction context, if any, and aborts.
[[noreturn]] void failPipeline() {
  if (const auto &Hook = failureHook()) {
    std::string Ctx = Hook();
    if (!Ctx.empty())
      std::fputs(Ctx.c_str(), stderr);
  }
  std::abort();
}

void checkStage(const Module &M, const PipelineOptions &Opts,
                const char *Stage) {
  if (!Opts.Verify)
    return;
  std::string E = verifyModule(M);
  if (E.empty())
    return;
  std::fprintf(stderr,
               "pipeline verification failed after stage '%s': %s\n%s\n",
               Stage, E.c_str(), printModule(M).c_str());
  failPipeline();
}

void failAudit(const AuditResult &R) {
  std::fputs(R.Report.c_str(), stderr);
  failPipeline();
}

void auditStage(PassAudit &Audit, const Module &M, const std::string &Stage) {
  if (!Audit.enabled())
    return;
  AuditResult R = Audit.checkpoint(M, Stage);
  if (!R.ok())
    failAudit(R);
}

void failOracle(const OracleResult &R) {
  std::fputs(R.Report.c_str(), stderr);
  failPipeline();
}

void oracleStage(ExecOracle &Oracle, const Module &M,
                 const std::string &Stage) {
  if (!Oracle.enabled())
    return;
  OracleResult R = Oracle.checkpoint(M, Stage);
  if (!R.ok())
    failOracle(R);
}

void optimizeFunction(Function &F, Module &M, OptLevel L,
                      const PipelineOptions &Opts, PassAudit &Audit,
                      ExecOracle &Oracle) {
  // Per-sub-pass audit + oracle checkpoint (Full levels only).
  auto Sub = [&](const char *Pass) {
    std::string Stage = std::string(Pass) + "(" + F.name() + ")";
    if (Audit.full()) {
      AuditResult R = Audit.checkpointFunction(F, M, Stage);
      if (!R.ok())
        failAudit(R);
    }
    if (Oracle.full()) {
      OracleResult R = Oracle.checkpointFunction(F, M, Stage);
      if (!R.ok())
        failOracle(R);
    }
  };

  if (L == OptLevel::None)
    return;

  runClassicalPipeline(F);
  Sub("classical");
  if (L == OptLevel::Classical)
    return;

  // --- the VLIW prototype pipeline ---
  if (Opts.Superblocks && Opts.Profile) {
    formSuperblocks(F, *Opts.Profile);
    runClassicalPipeline(F);
    Sub("superblocks");
  }
  if (Opts.LoadStoreMotion) {
    speculativeLoadStoreMotion(F, M);
    runClassicalPipeline(F);
    Sub("loadstore-motion");
  }
  if (Opts.Unspeculation) {
    unspeculate(F);
    Sub("unspeculation");
  }
  if (Opts.UnrollAndRename) {
    unrollInnermostLoops(F, Opts.UnrollFactor);
    straighten(F);
    renameInnermostLoops(F);
    Sub("unroll+rename");
  }
  if (Opts.Pipelining) {
    pipelineInnermostLoops(F, Opts.Machine, M);
    Sub("pipelining");
  }
  if (Opts.GlobalScheduling) {
    GlobalScheduleOptions GS;
    GS.Profile = Opts.Profile;
    globalSchedule(F, Opts.Machine, M, GS);
    Sub("global-schedule");
  }
  if (Opts.Combining) {
    limitedCombine(F);
    copyPropagate(F);
    deadCodeElim(F);
    Sub("combining");
  }
  straighten(F);
  // PDF layout runs at module level after prologs (optimize() below), so
  // the measured gate can simulate real code.
  if (Opts.BlockExpansion) {
    expandBasicBlocks(F, Opts.Machine);
    Sub("block-expansion");
  }
  straighten(F);
  Sub("straighten");
}

} // namespace

void vsc::setPipelineFailureHook(std::function<std::string()> Hook) {
  failureHook() = std::move(Hook);
}

void vsc::optimize(Module &M, OptLevel L, const PipelineOptions &Opts) {
  PassAudit Audit(Opts.Audit, Opts.Machine);
  OracleOptions OracleCfg = Opts.OracleCfg;
  OracleCfg.PageZeroReadable = Opts.Machine.PageZeroReadable;
  ExecOracle Oracle(Opts.Oracle, OracleCfg);
  checkStage(M, Opts, "input");
  if (Audit.enabled()) {
    AuditResult R = Audit.begin(M);
    if (!R.ok())
      failAudit(R);
  }
  if (Oracle.enabled())
    Oracle.begin(M);
  if (L == OptLevel::Vliw && Opts.Inlining) {
    inlineLeafFunctions(M);
    checkStage(M, Opts, "inline");
    auditStage(Audit, M, "inline");
    oracleStage(Oracle, M, "inline");
  }
  for (auto &F : M.functions()) {
    optimizeFunction(*F, M, L, Opts, Audit, Oracle);
    checkStage(M, Opts, ("optimize(" + F->name() + ")").c_str());
    auditStage(Audit, M, "optimize(" + F->name() + ")");
    oracleStage(Oracle, M, "optimize(" + F->name() + ")");
  }
  if (Opts.AllocateRegisters) {
    for (auto &F : M.functions())
      allocateRegisters(*F);
    checkStage(M, Opts, "regalloc");
    auditStage(Audit, M, "regalloc");
    oracleStage(Oracle, M, "regalloc");
  }
  // Prologs last: the spill code must not be rescheduled away from the
  // frame adjustment.
  if (Opts.InsertPrologs) {
    for (auto &F : M.functions()) {
      insertPrologEpilog(*F, /*Tailored=*/L == OptLevel::Vliw &&
                                 Opts.TailorProlog);
    }
    checkStage(M, Opts, "prolog");
    auditStage(Audit, M, "prolog");
    oracleStage(Oracle, M, "prolog");
  }
  // Profile-directed layout, gated by re-simulating the training input
  // when one is supplied.
  if (L == OptLevel::Vliw && Opts.Profile) {
    pdfLayoutMeasured(M, *Opts.Profile, Opts.Machine, Opts.TrainInput);
    checkStage(M, Opts, "pdf-layout");
    auditStage(Audit, M, "pdf-layout");
    oracleStage(Oracle, M, "pdf-layout");
  }
  for (auto &F : M.functions())
    F->renumber();
}
