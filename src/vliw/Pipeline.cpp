//===- vliw/Pipeline.cpp - Optimization pipelines ----------------------------===//
//
// The driver is built on the pass manager (pm/PassManager.h): the
// per-function pipeline is a FunctionPassManager run by a (possibly
// parallel) FunctionToModulePassAdaptor, module-level stages are
// ModulePasses acting as serial barriers, and the Verifier / PassAudit /
// ExecOracle checkpoints are pass-instrumentation callbacks instead of
// hand-spliced calls:
//
//  - AfterFunctionPass (registered only at Audit/Oracle Full): per-pass
//    checkpoints with the old "pass(function)" stage names. Registering
//    it forces the adaptor serial — the oracle executes code and may read
//    callee bodies, which must not race with other workers.
//
//  - AfterFunctionChain: fires serially in module layout order after the
//    parallel region's barrier; per-function verify plus Boundaries-level
//    audit/oracle under the old "optimize(function)" stage names.
//
//  - AfterModulePass: whole-module verify/audit/oracle at the stage
//    boundaries ("inline", "regalloc", "prolog", "pdf-layout").
//
//===----------------------------------------------------------------------===//

#include "vliw/Pipeline.h"

#include "audit/AliasAudit.h"
#include "audit/PassAudit.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "pm/Passes.h"
#include "profile/ProfileData.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

using namespace vsc;

PipelineOptions::PipelineOptions() : Machine(rs6000()) {}

const char *vsc::optLevelName(OptLevel L) {
  switch (L) {
  case OptLevel::None:
    return "none";
  case OptLevel::Classical:
    return "classical";
  case OptLevel::Vliw:
    return "vliw";
  }
  return "?";
}

namespace {

std::function<std::string()> &failureHook() {
  static std::function<std::string()> Hook;
  return Hook;
}

/// Prints the harness-supplied reproduction context, if any, and aborts.
[[noreturn]] void failPipeline() {
  if (const auto &Hook = failureHook()) {
    std::string Ctx = Hook();
    if (!Ctx.empty())
      std::fputs(Ctx.c_str(), stderr);
  }
  std::abort();
}

void checkStage(const Module &M, const PipelineOptions &Opts,
                const char *Stage) {
  if (!Opts.Verify)
    return;
  std::string E = verifyModule(M);
  if (E.empty())
    return;
  std::fprintf(stderr,
               "pipeline verification failed after stage '%s': %s\n%s\n",
               Stage, E.c_str(), printModule(M).c_str());
  failPipeline();
}

void failAudit(const AuditResult &R) {
  std::fputs(R.Report.c_str(), stderr);
  failPipeline();
}

void auditStage(PassAudit &Audit, const Module &M, const std::string &Stage) {
  if (!Audit.enabled())
    return;
  AuditResult R = Audit.checkpoint(M, Stage);
  if (!R.ok())
    failAudit(R);
}

void failOracle(const OracleResult &R) {
  std::fputs(R.Report.c_str(), stderr);
  failPipeline();
}

void oracleStage(ExecOracle &Oracle, const Module &M,
                 const std::string &Stage) {
  if (!Oracle.enabled())
    return;
  OracleResult R = Oracle.checkpoint(M, Stage);
  if (!R.ok())
    failOracle(R);
}

/// Runs the dynamic NoAlias-claim audit as a serial module barrier. It
/// must run before RenumberPass: claims are keyed by instruction id, which
/// renumbering rewrites.
class AliasAuditPass : public ModulePass {
public:
  AliasAuditPass(const MachineModel &MM, const AliasClaimLog &Log,
                 const std::vector<RunOptions> *Battery)
      : MM(MM), Log(Log), Battery(Battery) {}
  const char *name() const override { return "alias-audit"; }
  std::string run(Module &M, FunctionAnalysisManager &) override {
    AliasAuditStats Stats;
    AuditResult R = runAliasAudit(
        M, MM, Battery ? *Battery : defaultAliasAuditBattery(), Log.claims(),
        &Stats);
    if (!R.ok())
      failAudit(R);
    return "";
  }

private:
  const MachineModel &MM;
  const AliasClaimLog &Log;
  const std::vector<RunOptions> *Battery;
};

/// The per-function chain for level \p L (empty at OptLevel::None — the
/// adaptor still runs so the per-function checkpoints fire).
FunctionPassManager buildFunctionPipeline(OptLevel L,
                                          const PipelineOptions &Opts,
                                          PipelineLoopLog *PipeLog) {
  FunctionPassManager FPM;
  if (L == OptLevel::None)
    return FPM;

  bool FA = Opts.FlowSensitiveAlias;
  FPM.add(std::make_unique<ClassicalPass>(FA));
  if (L == OptLevel::Classical)
    return FPM;

  // --- the VLIW prototype pipeline ---
  if (Opts.Superblocks && Opts.Profile)
    FPM.add(std::make_unique<SuperblockPass>(*Opts.Profile, FA));
  if (Opts.LoadStoreMotion)
    FPM.add(std::make_unique<LoadStoreMotionPass>(FA));
  if (Opts.Unspeculation)
    FPM.add(std::make_unique<UnspeculationPass>(FA));
  if (Opts.UnrollAndRename)
    FPM.add(std::make_unique<UnrollRenamePass>(Opts.UnrollFactor));
  if (Opts.Pipelining)
    FPM.add(std::make_unique<PipeliningPass>(Opts.Machine, FA,
                                             Opts.ExactPipelining,
                                             Opts.ExactPipeline, PipeLog));
  if (Opts.GlobalScheduling) {
    GlobalScheduleOptions GS;
    GS.Profile = Opts.Profile;
    GS.FlowAlias = FA;
    FPM.add(std::make_unique<GlobalSchedulePass>(Opts.Machine, GS));
  }
  if (Opts.Combining)
    FPM.add(std::make_unique<CombiningPass>(FA));
  FPM.add(std::make_unique<StraightenPass>());
  // PDF layout runs at module level after prologs, so the measured gate
  // can simulate real code.
  if (Opts.BlockExpansion)
    FPM.add(std::make_unique<BlockExpansionPass>(Opts.Machine));
  FPM.add(std::make_unique<StraightenPass>());
  return FPM;
}

} // namespace

void vsc::setPipelineFailureHook(std::function<std::string()> Hook) {
  failureHook() = std::move(Hook);
}

uint64_t vsc::optionsFingerprint(OptLevel L, const PipelineOptions &Opts) {
  uint64_t H = 1469598103934665603ULL;
  auto Word = [&H](uint64_t V) {
    for (int I = 0; I != 8; ++I) {
      H ^= (V >> (8 * I)) & 0xff;
      H *= 1099511628211ULL;
    }
  };
  Word(static_cast<uint64_t>(L));
  Word(machineFingerprint(Opts.Machine));
  Word(Opts.UnrollFactor);
  // One bit per pass toggle, in declaration order; adding a toggle here is
  // part of adding it to PipelineOptions (the service's cached compiles key
  // on this value).
  uint64_t Bits = 0;
  for (bool B : {Opts.Inlining, Opts.LoadStoreMotion, Opts.Unspeculation,
                 Opts.UnrollAndRename, Opts.Pipelining,
                 Opts.GlobalScheduling, Opts.Combining, Opts.BlockExpansion,
                 Opts.TailorProlog, Opts.InsertPrologs,
                 Opts.AllocateRegisters, Opts.Superblocks,
                 Opts.FlowSensitiveAlias, Opts.Profile != nullptr,
                 Opts.TrainInput != nullptr, Opts.TrainBattery != nullptr})
    Bits = (Bits << 1) | (B ? 1 : 0);
  Word(Bits);
  // Exact pipelining changes bytes in Apply mode, and the budget knobs
  // decide what Apply can find — fold them all in.
  Word(static_cast<uint64_t>(Opts.ExactPipelining));
  Word(Opts.ExactPipeline.NodeBudget);
  Word(Opts.ExactPipeline.MaxStages);
  Word(Opts.ExactPipeline.MaxBodyInstrs);
  Word(Opts.ExactPipeline.MaxII);
  return H;
}

std::unique_ptr<Module> vsc::optimizedClone(const Module &Source, OptLevel L,
                                            const PipelineOptions &Opts) {
  auto M = cloneModule(Source);
  optimize(*M, L, Opts);
  return M;
}

void vsc::optimize(Module &M, OptLevel L, const PipelineOptions &Opts) {
  PassAudit Audit(Opts.Audit, Opts.Machine);
  OracleOptions OracleCfg = Opts.OracleCfg;
  OracleCfg.PageZeroReadable = Opts.Machine.PageZeroReadable;
  ExecOracle Oracle(Opts.Oracle, OracleCfg);
  checkStage(M, Opts, "input");
  if (Audit.enabled()) {
    AuditResult R = Audit.begin(M);
    if (!R.ok())
      failAudit(R);
  }
  if (Oracle.enabled())
    Oracle.begin(M);

  unsigned Threads = Opts.Threads ? std::min(Opts.Threads, 64u)
                                  : ThreadPool::defaultThreadCount();

  PassInstrumentation PI;
  if (Audit.full() || Oracle.full()) {
    // Per-pass checkpoints; registering this callback forces the function
    // adaptors serial (see pm/PassManager.h).
    PI.AfterFunctionPass = [&Audit, &Oracle, &M](const FunctionPass &P,
                                                 Function &F) {
      std::string Stage = std::string(P.name()) + "(" + F.name() + ")";
      if (Audit.full()) {
        AuditResult R = Audit.checkpointFunction(F, M, Stage);
        if (!R.ok())
          failAudit(R);
      }
      if (Oracle.full()) {
        OracleResult R = Oracle.checkpointFunction(F, M, Stage);
        if (!R.ok())
          failOracle(R);
      }
    };
  }
  PI.AfterFunctionChain = [&Audit, &Oracle, &M, &Opts](
                              Function &F, const std::string &StageName) {
    // Per-function boundary checks belong to the main optimize stage; the
    // regalloc/prolog stages keep their whole-module checkpoints below.
    if (StageName != "optimize")
      return;
    std::string Stage = "optimize(" + F.name() + ")";
    if (Opts.Verify) {
      std::string E = verifyFunction(F);
      if (!E.empty()) {
        std::fprintf(stderr,
                     "pipeline verification failed after stage '%s': %s\n%s\n",
                     Stage.c_str(), E.c_str(), printFunction(F).c_str());
        failPipeline();
      }
    }
    if (Audit.enabled()) {
      AuditResult R = Audit.checkpointFunction(F, M, Stage);
      if (!R.ok())
        failAudit(R);
    }
    if (Oracle.enabled()) {
      OracleResult R = Oracle.checkpointFunction(F, M, Stage);
      if (!R.ok())
        failOracle(R);
    }
  };
  PI.AfterModulePass = [&Audit, &Oracle, &Opts](const ModulePass &P,
                                                Module &Mod) {
    std::string Stage = P.name();
    if (Stage == "renumber")
      return; // last pass; audit matches instructions by id
    if (Stage == "optimize") {
      // Function-level checks already ran; add the whole-module verify
      // (call-target resolution etc.) the old per-function loop provided.
      checkStage(Mod, Opts, Stage.c_str());
      return;
    }
    checkStage(Mod, Opts, Stage.c_str());
    auditStage(Audit, Mod, Stage);
    oracleStage(Oracle, Mod, Stage);
  };

  ModulePassManager MPM(std::move(PI));
  if (L == OptLevel::Vliw && Opts.Inlining)
    MPM.add(std::make_unique<InlinePass>());
  PipelineLoopLog PipeLog;
  PipelineLoopLog *PipeLogPtr =
      Opts.ExactPipelining != ExactPipelineMode::Off ? &PipeLog : nullptr;
  MPM.addFunctionPasses("optimize", buildFunctionPipeline(L, Opts, PipeLogPtr),
                        Threads);
  if (Opts.AllocateRegisters) {
    FunctionPassManager RA;
    RA.add(std::make_unique<RegAllocPass>());
    MPM.addFunctionPasses("regalloc", std::move(RA), Threads);
  }
  // Prologs last: the spill code must not be rescheduled away from the
  // frame adjustment.
  if (Opts.InsertPrologs) {
    FunctionPassManager PL;
    PL.add(std::make_unique<PrologPass>(L == OptLevel::Vliw &&
                                        Opts.TailorProlog));
    MPM.addFunctionPasses("prolog", std::move(PL), Threads);
  }
  // Profile-directed layout, gated by re-simulating the training input(s)
  // when supplied.
  int PdfKept = -1;
  if (L == OptLevel::Vliw && Opts.Profile)
    MPM.add(std::make_unique<PdfLayoutPass>(*Opts.Profile, Opts.Machine,
                                            Opts.TrainInput,
                                            Opts.TrainBattery, Threads,
                                            &PdfKept));
  // Claim collection + validation: the sink records every NoAlias verdict
  // the passes above issue; the audit pass replays them against runtime
  // addresses on the final (pre-renumbering) module.
  AliasClaimLog ClaimLog;
  AliasClaimSink *PrevSink = nullptr;
  if (Opts.AliasAudit) {
    PrevSink = setAliasClaimSink(&ClaimLog);
    MPM.add(std::make_unique<AliasAuditPass>(Opts.Machine, ClaimLog,
                                             Opts.AliasAuditBattery));
  }
  MPM.add(std::make_unique<RenumberPass>());

  FunctionAnalysisManager FAM(M);
  std::string Err = MPM.run(M, FAM);
  if (Opts.AliasAudit)
    setAliasClaimSink(PrevSink);
  if (!Err.empty()) {
    std::fprintf(stderr, "pipeline failed: %s\n", Err.c_str());
    failPipeline();
  }
  if (Opts.Stats) {
    FunctionAnalyses::Stats S = FAM.totalStats();
    Opts.Stats->AnalysisHits += S.Hits;
    Opts.Stats->AnalysisMisses += S.Misses;
    Opts.Stats->PdfLayoutKept = PdfKept;
    if (PipeLogPtr) {
      std::vector<LoopPipelineRecord> Loops = PipeLog.sorted();
      for (LoopPipelineRecord &R : Loops)
        Opts.Stats->PipelineLoops.push_back(std::move(R));
    }
    for (const auto &E : Audit.aliasQueryLog()) {
      auto It = std::find_if(
          Opts.Stats->AliasQueriesByStage.begin(),
          Opts.Stats->AliasQueriesByStage.end(),
          [&E](const auto &S2) { return S2.first == E.first; });
      if (It == Opts.Stats->AliasQueriesByStage.end()) {
        Opts.Stats->AliasQueriesByStage.push_back(E);
        continue;
      }
      It->second.Queries += E.second.Queries;
      It->second.NoAlias += E.second.NoAlias;
      It->second.MustAlias += E.second.MustAlias;
      It->second.MayAlias += E.second.MayAlias;
    }
  }
}
