//===- vliw/LimitedCombine.cpp - Limited combining ---------------------------===//

#include "vliw/LimitedCombine.h"

#include "analysis/Liveness.h"
#include "analysis/ValueTrack.h"
#include "cfg/CfgEdit.h"

#include <algorithm>
#include <cassert>

using namespace vsc;

namespace {

struct Pos {
  BasicBlock *BB;
  size_t Idx;
};

/// Rewrites one use of \p RD when the start was "LR rD = rS".
bool rewriteCopyUse(Instr &I, Reg RD, Reg RS) {
  bool Done = false;
  const OpcodeInfo &Info = opcodeInfo(I.Op);
  if (Info.NumSrcs >= 1 && I.Src1 == RD) {
    I.Src1 = RS;
    Done = true;
  }
  if (Info.NumSrcs >= 2 && I.Src2 == RD) {
    I.Src2 = RS;
    Done = true;
  }
  return Done;
}

/// Rewrites one use of \p RD when the start was "LI rD = Imm"; \returns
/// false if the user has no immediate form.
bool foldImmediateUse(Instr &I, Reg RD, int64_t Imm) {
  auto ToImmForm = [](Opcode Op, Opcode &Out) {
    switch (Op) {
    case Opcode::A:
      Out = Opcode::AI;
      return true;
    case Opcode::S:
      Out = Opcode::SI;
      return true;
    case Opcode::MUL:
      Out = Opcode::MULI;
      return true;
    case Opcode::AND:
      Out = Opcode::ANDI;
      return true;
    case Opcode::OR:
      Out = Opcode::ORI;
      return true;
    case Opcode::XOR:
      Out = Opcode::XORI;
      return true;
    case Opcode::SL:
      Out = Opcode::SLI;
      return true;
    case Opcode::SR:
      Out = Opcode::SRI;
      return true;
    case Opcode::SRA:
      Out = Opcode::SRAI;
      return true;
    case Opcode::C:
      Out = Opcode::CI;
      return true;
    default:
      return false;
    }
  };
  auto IsCommutative = [](Opcode Op) {
    return Op == Opcode::A || Op == Opcode::MUL || Op == Opcode::AND ||
           Op == Opcode::OR || Op == Opcode::XOR;
  };

  if (I.Op == Opcode::LR && I.Src1 == RD) {
    I.Op = Opcode::LI;
    I.Src1 = Reg();
    I.Imm = Imm;
    return true;
  }
  const OpcodeInfo &Info = opcodeInfo(I.Op);
  if (Info.NumSrcs != 2)
    return false;
  if (I.Src1 == RD && I.Src2 == RD)
    return false;
  Opcode ImmOp;
  if (I.Src2 == RD && ToImmForm(I.Op, ImmOp)) {
    I.Op = ImmOp;
    I.Src2 = Reg();
    I.Imm = Imm;
    return true;
  }
  if (I.Src1 == RD && IsCommutative(I.Op) && ToImmForm(I.Op, ImmOp)) {
    I.Op = ImmOp;
    I.Src1 = I.Src2;
    I.Src2 = Reg();
    I.Imm = Imm;
    return true;
  }
  return false;
}

/// \returns true if \p I mentions \p R outside its explicit source fields
/// (an implicit use rewriting cannot reach).
bool hasImplicitUseOf(const Instr &I, Reg R) {
  std::vector<Reg> Uses;
  I.collectUses(Uses);
  unsigned Total = static_cast<unsigned>(
      std::count(Uses.begin(), Uses.end(), R));
  unsigned Explicit = 0;
  const OpcodeInfo &Info = opcodeInfo(I.Op);
  if (Info.NumSrcs >= 1 && I.Src1 == R)
    ++Explicit;
  if (Info.NumSrcs >= 2 && I.Src2 == R)
    ++Explicit;
  return Total > Explicit;
}

/// Attempts to combine the starting copy/immediate at \p Start. \returns
/// true if the function changed.
bool combineFrom(Function &F, const Cfg &G, const Liveness &Live, Pos Start,
                 const CombineOptions &Opts) {
  Instr &StartI = Start.BB->instrs()[Start.Idx];
  Reg RD = StartI.Dst;
  Reg RS = StartI.Src1; // invalid for LI
  bool IsCopy = StartI.Op == Opcode::LR;
  if (!RD.isGpr())
    return false;
  if (IsCopy && RD == RS) {
    Start.BB->instrs().erase(Start.BB->instrs().begin() +
                             static_cast<long>(Start.Idx));
    return true;
  }

  // Walk forward until the last use of RD.
  std::vector<Pos> Path; // every instruction walked, in order
  std::vector<Pos> Uses;
  bool CrossedJoin = false;
  bool LastUseKillsRd = false;
  BasicBlock *BB = Start.BB;
  size_t Idx = Start.Idx + 1;
  unsigned Walked = 0;
  std::vector<Reg> Tmp;
  std::unordered_set<const BasicBlock *> VisitedBlocks; // no loops
  VisitedBlocks.insert(BB);

  while (true) {
    if (Idx >= BB->size() || Walked >= Opts.Window) {
      if (Walked >= Opts.Window)
        break;
      // Block boundary: follow fallthrough or an unconditional branch.
      BasicBlock *Next = nullptr;
      if (BB->canFallThrough()) {
        size_t BI = F.indexOf(BB);
        if (BI + 1 >= F.blocks().size())
          break;
        Next = F.blocks()[BI + 1].get();
      }
      if (!Next)
        break; // RET or conditional suffix handled below as instructions
      if (G.preds(Next).size() > 1)
        CrossedJoin = true;
      if (VisitedBlocks.count(Next))
        break;
      VisitedBlocks.insert(Next);
      BB = Next;
      Idx = 0;
      continue;
    }
    Instr &J = BB->instrs()[Idx];
    ++Walked;

    if (J.Op == Opcode::B) {
      BasicBlock *Next = F.findBlock(J.Target);
      assert(Next && "verified function");
      if (G.preds(Next).size() > 1)
        CrossedJoin = true;
      if (VisitedBlocks.count(Next))
        break;
      VisitedBlocks.insert(Next);
      Path.push_back(Pos{BB, Idx});
      BB = Next;
      Idx = 0;
      continue;
    }
    if (J.isCondBranch() || J.isRet()) {
      // Cannot follow both ways; stop here (RD must be dead past the last
      // use, checked below).
      if (hasImplicitUseOf(J, RD))
        return false; // e.g. RET with RD callee-saved
      if (J.isCondBranch() && J.Src1 == RD)
        return false; // conditional branches read CRs; defensive
      break;
    }

    // Uses of RD must be rewriteable. Uses are processed before the def
    // check so "LR r5=r33; AI r5=r5,1" combines (the use instruction may
    // itself redefine RD, which also ends the live range).
    bool UsesRd = false;
    Tmp.clear();
    J.collectUses(Tmp);
    if (std::find(Tmp.begin(), Tmp.end(), RD) != Tmp.end()) {
      if (hasImplicitUseOf(J, RD))
        return false;
      if (!IsCopy) {
        // Probe foldability on a scratch copy.
        Instr Probe = J;
        if (!foldImmediateUse(Probe, RD, StartI.Imm))
          return false;
      }
      UsesRd = true;
      Uses.push_back(Pos{BB, Idx});
    }

    // Defs of RD or RS end the walk after this instruction.
    Tmp.clear();
    J.collectDefs(Tmp);
    bool DefsRd = std::find(Tmp.begin(), Tmp.end(), RD) != Tmp.end();
    if (DefsRd || (IsCopy && std::find(Tmp.begin(), Tmp.end(), RS) !=
                                 Tmp.end())) {
      if (UsesRd && DefsRd) {
        // The last use also redefines RD: the old value is trivially dead
        // afterwards.
        Path.push_back(Pos{BB, Idx});
        LastUseKillsRd = true;
      } else if (UsesRd) {
        // Uses RD while redefining RS: rewriting would read the new RS.
        Uses.pop_back();
      }
      break;
    }
    Path.push_back(Pos{BB, Idx});
    ++Idx;
  }

  if (Uses.empty())
    return false;
  Pos LastUse = Uses.back();

  // RD must be dead after the last use (on every path) — unless that use
  // itself redefined RD.
  bool LastIsKiller =
      LastUseKillsRd && LastUse.BB == Path.back().BB &&
      LastUse.Idx == Path.back().Idx;
  if (!LastIsKiller) {
    std::vector<BitVector> LiveAt = Live.liveAtEachInstr(LastUse.BB);
    int RdIdx = Live.universe().indexOf(RD);
    if (RdIdx >= 0 &&
        LiveAt[LastUse.Idx + 1].test(static_cast<size_t>(RdIdx)))
      return false;
  }

  auto RewriteUse = [&](Instr &I) {
    bool Ok = IsCopy ? rewriteCopyUse(I, RD, RS)
                     : foldImmediateUse(I, RD, StartI.Imm);
    assert(Ok && "use became unrewriteable?");
    (void)Ok;
  };

  if (!CrossedJoin) {
    // In-place rewrite, then drop the starting instruction.
    for (const Pos &UsePos : Uses)
      RewriteUse(UsePos.BB->instrs()[UsePos.Idx]);
    Start.BB->instrs().erase(Start.BB->instrs().begin() +
                             static_cast<long>(Start.Idx));
    return true;
  }

  if (!Opts.AllowDuplication)
    return false;

  // Duplicate the walked sequence up to the last use, in place of the
  // starting instruction, closed by a branch to the continuation.
  // Continuation: the instruction after the last use.
  std::string ContLabel;
  if (LastUse.Idx + 1 < LastUse.BB->size()) {
    // Split the last-use block.
    size_t LBIdx = F.indexOf(LastUse.BB);
    BasicBlock *C = F.insertBlock(LBIdx + 1, LastUse.BB->label() + ".cont");
    auto &Ins = LastUse.BB->instrs();
    C->instrs().assign(Ins.begin() + static_cast<long>(LastUse.Idx) + 1,
                       Ins.end());
    Ins.erase(Ins.begin() + static_cast<long>(LastUse.Idx) + 1, Ins.end());
    ContLabel = C->label();
  } else {
    size_t LBIdx = F.indexOf(LastUse.BB);
    assert(LastUse.BB->canFallThrough() && LBIdx + 1 < F.blocks().size() &&
           "last use at a function tail?");
    ContLabel = F.blocks()[LBIdx + 1]->label();
  }

  // Build the duplicate (skipping unconditional branches along the path).
  std::vector<Instr> Dup;
  for (const Pos &P : Path) {
    // Stop after the last use.
    const Instr &Orig = P.BB->instrs()[P.Idx];
    if (Orig.Op == Opcode::B)
      continue;
    Instr Copy = Orig;
    F.assignId(Copy);
    std::vector<Reg> U;
    Copy.collectUses(U);
    if (std::find(U.begin(), U.end(), RD) != U.end())
      RewriteUse(Copy);
    Dup.push_back(std::move(Copy));
    if (P.BB == LastUse.BB && P.Idx == LastUse.Idx)
      break;
  }
  Instr Closer;
  Closer.Op = Opcode::B;
  Closer.Target = ContLabel;
  F.assignId(Closer);
  Dup.push_back(std::move(Closer));

  // Replace the start block's tail (which was the first path segment) with
  // the duplicate.
  auto &StartIns = Start.BB->instrs();
  StartIns.erase(StartIns.begin() + static_cast<long>(Start.Idx),
                 StartIns.end());
  for (Instr &I : Dup)
    StartIns.push_back(std::move(I));
  return true;
}

/// Local copy coalescing: "X: op rS = ...; ...; LR rD = rS" with rS dead
/// after the copy and rD/rS untouched in between becomes "op rD = ..."
/// (the paper's "coalescing" stage that leaves the lone AI in the
/// load/store-motion example). \returns true if a copy was coalesced.
bool coalesceOnce(Function &F, const Cfg &G, const Liveness &Live) {
  std::vector<Reg> Tmp;
  for (auto &BBPtr : F.blocks()) {
    BasicBlock *BB = BBPtr.get();
    if (!G.isReachable(BB))
      continue;
    for (size_t I = 0; I != BB->size(); ++I) {
      const Instr &Copy = BB->instrs()[I];
      if (Copy.Op != Opcode::LR || !Copy.Dst.isGpr() || !Copy.Src1.isGpr())
        continue;
      Reg RD = Copy.Dst, RS = Copy.Src1;
      if (RD == RS) {
        BB->instrs().erase(BB->instrs().begin() + static_cast<long>(I));
        return true;
      }
      // rS must die at the copy.
      {
        std::vector<BitVector> LiveAt = Live.liveAtEachInstr(BB);
        int RsIdx = Live.universe().indexOf(RS);
        if (RsIdx >= 0 && LiveAt[I + 1].test(static_cast<size_t>(RsIdx)))
          continue;
      }
      // Scan backwards for rS's defining instruction.
      for (size_t J = I; J-- > 0;) {
        Instr &Def = BB->instrs()[J];
        Tmp.clear();
        Def.collectDefs(Tmp);
        bool DefsRs = std::find(Tmp.begin(), Tmp.end(), RS) != Tmp.end();
        bool DefsRd = std::find(Tmp.begin(), Tmp.end(), RD) != Tmp.end();
        if (DefsRs) {
          if (DefsRd || !opcodeInfo(Def.Op).HasDst || Def.Dst != RS ||
              Def.isCall() || Def.Op == Opcode::LU)
            break;
          Def.Dst = RD;
          BB->instrs().erase(BB->instrs().begin() + static_cast<long>(I));
          return true;
        }
        if (DefsRd)
          break;
        Tmp.clear();
        Def.collectUses(Tmp);
        if (std::find(Tmp.begin(), Tmp.end(), RS) != Tmp.end() ||
            std::find(Tmp.begin(), Tmp.end(), RD) != Tmp.end())
          break;
      }
    }
  }
  return false;
}

/// Store-to-load forwarding: a doubleword load whose location must-alias
/// an earlier same-block store, with every store in between provably
/// disjoint, reads exactly the stored register. Doubleword only: smaller
/// stores truncate while loads sign-extend, so forwarding the full stored
/// register would be wrong for out-of-range values. The load becomes an
/// LR the combining walk then collapses. \returns true on a rewrite.
bool forwardStoreToLoadOnce(Function &F, const Cfg &G,
                            const AliasAnalysis *AA) {
  std::vector<Reg> Tmp;
  for (auto &BBPtr : F.blocks()) {
    BasicBlock *BB = BBPtr.get();
    if (!G.isReachable(BB))
      continue;
    auto &Ins = BB->instrs();
    for (size_t I = 0; I != Ins.size(); ++I) {
      const Instr &Ld = Ins[I];
      if (Ld.Op != Opcode::L || Ld.IsVolatile || Ld.MemSize != 8 ||
          !Ld.Dst.isGpr())
        continue;
      std::unordered_set<Reg, RegHash> Between; // defs in (store, load)
      for (size_t J = I; J-- > 0;) {
        const Instr &St = Ins[J];
        if (St.isCall())
          break;
        if (St.isStore()) {
          // SameExecution needs the shared base untouched between the
          // store and the load; Between holds exactly the defs in that
          // window (the store's own defs are added after this check).
          AliasScope Scope = AliasScope::CrossExecution;
          if (St.memBase() == Ld.memBase() && !Between.count(Ld.memBase()))
            Scope = AliasScope::SameExecution;
          AliasResult R = AA->alias(St, Ld, Scope);
          if (R == AliasResult::MustAlias) {
            if (St.MemSize == 8 && !St.IsVolatile && St.Src1.isGpr() &&
                !Between.count(St.Src1)) {
              Instr Copy;
              Copy.Op = Opcode::LR;
              Copy.Dst = Ld.Dst;
              Copy.Src1 = St.Src1;
              Copy.Id = Ld.Id;
              Ins[I] = Copy;
              return true;
            }
            break; // the value comes from this store but can't be forwarded
          }
          if (R == AliasResult::MayAlias)
            break;
          // NoAlias: provably disjoint, keep scanning past it.
        }
        Tmp.clear();
        St.collectDefs(Tmp);
        for (Reg D : Tmp)
          Between.insert(D);
      }
    }
  }
  return false;
}

} // namespace

bool vsc::limitedCombine(Function &F, const CombineOptions &Opts,
                         FunctionAnalyses &FA) {
  bool Any = false;
  for (unsigned Guard = 0; Guard < 64; ++Guard) {
    const Cfg &G = FA.cfg();
    const Liveness &Live = FA.liveness();
    const AliasAnalysis *AA = Opts.FlowAlias ? &FA.aliasAnalysis() : nullptr;
    bool Changed = false;
    for (auto &BBPtr : F.blocks()) {
      BasicBlock *BB = BBPtr.get();
      if (!G.isReachable(BB))
        continue;
      for (size_t I = 0; I != BB->size(); ++I) {
        const Instr &Ins = BB->instrs()[I];
        if (Ins.Op != Opcode::LR && Ins.Op != Opcode::LI)
          continue;
        if (combineFrom(F, G, Live, Pos{BB, I}, Opts)) {
          Changed = true;
          break;
        }
      }
      if (Changed)
        break;
    }
    if (!Changed)
      Changed = coalesceOnce(F, G, Live);
    if (!Changed && AA)
      Changed = forwardStoreToLoadOnce(F, G, AA);
    if (!Changed)
      break;
    FA.invalidateAll();
    Any = true;
    removeUnreachableBlocks(F);
  }
  return Any;
}

bool vsc::limitedCombine(Function &F, const CombineOptions &Opts) {
  FunctionAnalyses FA(F);
  return limitedCombine(F, Opts, FA);
}
