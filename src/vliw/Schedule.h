//===- vliw/Schedule.h - Global scheduling + pipelining -------*- C++ -*-===//
///
/// \file
/// The scheduling core of the reproduction, after the paper's "Unrolling,
/// Renaming, Global Scheduling, Software Pipelining" section:
///
///  * Per-block list scheduling under the machine model (removes load-use
///    and compare→branch stalls inside a block) — the baseline compaction.
///  * Global scheduling: upward code motion across block boundaries. An
///    operation moves from the top of a successor into a predecessor's
///    idle issue slots; motion above a conditional branch makes it
///    speculative, which requires side-effect freedom, a safety proof for
///    loads, and destinations dead on the other branch target (live-range
///    renaming has usually provided fresh destinations).
///  * Enhanced pipeline scheduling, implemented as code motion across the
///    loop back edge ("a fence at the current scheduling point ... search
///    for the best operation on all paths which can possibly cross the
///    loop back edges"): the first operation of the body is rotated to the
///    bottom of the latch with a copy in the preheader, so each iteration
///    computes the next iteration's values early. Rotations are kept only
///    when the modelled steady-state cycle count improves.
///
/// The estimator replicates the timing simulator's issue rules so the
/// scheduler optimizes the metric the experiments measure.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_VLIW_SCHEDULE_H
#define VSC_VLIW_SCHEDULE_H

#include "ir/Module.h"
#include "machine/MachineModel.h"
#include "pipelining/ExactPipeliner.h"
#include "pm/Analysis.h"

namespace vsc {

class ProfileData;

/// Reorders the non-terminator instructions of \p BB (dependence-safe) to
/// minimise modelled issue cycles. \returns true if the order changed.
/// With \p AA the dependence builder disambiguates through the
/// flow-sensitive tier (AA facts are keyed by instruction id, so they
/// survive the reorder itself); without it the syntactic tier decides.
bool scheduleBlock(BasicBlock &BB, const MachineModel &MM,
                   const AliasAnalysis *AA = nullptr);

/// Modelled cycles to issue \p BB's instructions from a cold start.
unsigned estimateBlockCycles(const BasicBlock &BB, const MachineModel &MM);

/// Modelled steady-state cycles of one traversal of a loop body chain
/// (internal conditional branches assumed untaken, final back edge taken).
unsigned estimateSteadyStateCycles(const std::vector<BasicBlock *> &Chain,
                                   const MachineModel &MM);

struct GlobalScheduleOptions {
  /// Upper bound on instructions hoisted into any single block.
  unsigned MaxHoistPerBlock = 8;
  /// Enable speculative hoisting above conditional branches.
  bool SpeculativeHoist = true;
  /// Profile-directed heuristic (the paper's PDF application): operations
  /// on an improbable path are treated as speculative-and-unwanted; hoists
  /// prefer the likely successor.
  const ProfileData *Profile = nullptr;
  /// Join-point hoisting duplicates the operation into every predecessor
  /// (the paper's bookkeeping copies); this caps the fan-in considered.
  unsigned MaxJoinPreds = 3;
  /// Disambiguate through the cached flow-sensitive alias analysis
  /// (analysis/ValueTrack.h). Off = syntactic tier only (the bench_alias
  /// ablation baseline).
  bool FlowAlias = true;
};

/// Local scheduling everywhere plus cross-block upward motion into idle
/// slots. \p M provides global sizes for load-safety proofs. \returns true
/// if anything changed. The \p FA overload shares cached analyses with the
/// rest of the pipeline (the free-function form builds a throwaway cache).
bool globalSchedule(Function &F, const MachineModel &MM, const Module &M,
                    const GlobalScheduleOptions &Opts = {});
bool globalSchedule(Function &F, const MachineModel &MM, const Module &M,
                    const GlobalScheduleOptions &Opts, FunctionAnalyses &FA);

struct PipelineLoopOptions {
  /// Rotation attempts per loop for the greedy heuristic.
  unsigned MaxRotations = 8;
  /// Disambiguate through the cached flow-sensitive alias tier.
  bool FlowAlias = true;
  /// Exact software pipelining (pipelining/ExactPipeliner.h): Grade runs
  /// the branch-and-bound scheduler as a pure oracle per loop; Apply
  /// additionally substitutes an exact-guided kernel when its measured
  /// steady-state II strictly beats the heuristic's (else the heuristic
  /// result is kept untouched).
  ExactPipelineMode Exact = ExactPipelineMode::Off;
  ExactPipelinerOptions ExactOpts;
  /// When non-null and Exact != Off, one LoopPipelineRecord is appended
  /// per attempted chain-shaped innermost loop.
  std::vector<LoopPipelineRecord> *Records = nullptr;
};

/// Software-pipelines every innermost chain-shaped loop of \p F by rotating
/// operations across the back edge while the steady-state estimate
/// improves; optionally grades the result against (or replaces it with)
/// the exact modulo scheduler. \returns the total number of rotations
/// kept. Loop discovery, liveness and alias queries all go through the
/// shared analysis cache \p FA.
unsigned pipelineInnermostLoops(Function &F, const MachineModel &MM,
                                const Module &M,
                                const PipelineLoopOptions &Opts,
                                FunctionAnalyses &FA);
unsigned pipelineInnermostLoops(Function &F, const MachineModel &MM,
                                const Module &M, unsigned MaxRotations = 8);
unsigned pipelineInnermostLoops(Function &F, const MachineModel &MM,
                                const Module &M, unsigned MaxRotations,
                                FunctionAnalyses &FA, bool FlowAlias = true);

/// One VLIW instruction word: the block-relative indices of the operations
/// the machine model issues in the same cycle. This is the paper's framing
/// made visible — "imagining a VLIW with the same resources as the
/// superscalar, scheduling for that VLIW, but leaving the resulting code
/// in superscalar format".
struct VliwWord {
  uint64_t Cycle;
  std::vector<size_t> Ops;
};

/// Packs \p BB's instructions into VLIW words under \p MM's issue rules
/// (conditional branches assumed untaken, unconditional control taken).
std::vector<VliwWord> packIntoVliwWords(const BasicBlock &BB,
                                        const MachineModel &MM);

/// Renders \p BB as VLIW words, one line per cycle:
///   [  3] L r5 = 4(r4)  ||  BT found, cr0.eq
std::string formatAsVliw(const BasicBlock &BB, const MachineModel &MM);

} // namespace vsc

#endif // VSC_VLIW_SCHEDULE_H
