//===- vliw/LoadStoreMotion.cpp - Speculative load/store motion ------------===//

#include "vliw/LoadStoreMotion.h"

#include "analysis/MemAlias.h"
#include "analysis/ValueTrack.h"
#include "cfg/CfgEdit.h"
#include "cfg/Dominators.h"
#include "cfg/Loops.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace vsc;

namespace {

/// Builtin callees known not to touch user memory (the paper's I/O library
/// procedures with known properties).
bool isMemoryInertCall(const Instr &I) {
  return I.isCall() && (I.Sym == "print_int" || I.Sym == "print_char" ||
                        I.Sym == "read_int" || I.Sym == "exit");
}

struct GroupKey {
  Reg Base;
  int64_t Disp;
  uint8_t Size;
  bool operator<(const GroupKey &R) const {
    return std::tie(Base, Disp, Size) < std::tie(R.Base, R.Disp, R.Size);
  }
};

struct AccessRef {
  BasicBlock *BB;
  size_t Idx;
};

/// Attempts to move one candidate group out of \p L. \returns true on
/// success (the CFG/loop structure may have changed: recompute).
bool processLoop(Function &F, const Module &M, const Cfg &G, Loop &L,
                 const AliasAnalysis *AA) {
  // Collect in-loop memory operations and calls.
  std::vector<AccessRef> MemOps;
  bool HasOpaqueCall = false;
  for (BasicBlock *BB : L.Blocks) {
    for (size_t I = 0; I != BB->size(); ++I) {
      const Instr &Ins = BB->instrs()[I];
      if (Ins.isCall() && !isMemoryInertCall(Ins))
        HasOpaqueCall = true;
      if (Ins.isMemAccess())
        MemOps.push_back(AccessRef{BB, I});
    }
  }
  if (MemOps.empty() || HasOpaqueCall)
    return false;

  // Registers written in the loop (condition 2).
  std::unordered_map<Reg, unsigned, RegHash> DefCount;
  std::vector<Reg> Tmp;
  for (BasicBlock *BB : L.Blocks)
    for (const Instr &I : BB->instrs()) {
      Tmp.clear();
      I.collectDefs(Tmp);
      for (Reg D : Tmp)
        ++DefCount[D];
    }
  auto WrittenInLoop = [&](Reg R) {
    auto It = DefCount.find(R);
    return It != DefCount.end() && It->second > 0;
  };

  // Group candidates by (base, disp, size).
  std::map<GroupKey, std::vector<AccessRef>> Groups;
  for (const AccessRef &A : MemOps) {
    const Instr &I = A.BB->instrs()[A.Idx];
    if (I.Op != Opcode::L && I.Op != Opcode::ST)
      continue; // LU rewrites its base; leave it alone
    if (I.IsVolatile)
      continue;
    if (const Global *Gl = I.Sym.empty() ? nullptr : M.findGlobal(I.Sym))
      if (Gl->IsVolatile)
        continue;
    if (WrittenInLoop(I.memBase()))
      continue;
    Groups[GroupKey{I.memBase(), I.memDisp(), I.MemSize}].push_back(A);
  }

  for (auto &[Key, Members] : Groups) {
    const Instr &Rep = Members.front().BB->instrs()[Members.front().Idx];
    // Condition 5: safe to access unconditionally.
    Instr AsLoad = Rep;
    AsLoad.Op = Opcode::L;
    AsLoad.Dst = Reg::gpr(Reg::FirstVirtualGpr); // placeholder
    AsLoad.Src1 = Rep.memBase();
    AsLoad.Src2 = Reg();
    // AsLoad copies Rep (its Id included), so the flow-sensitive check can
    // reuse Rep's recorded location.
    if (!(AA ? AA->safeSpeculativeLoad(AsLoad, &M)
             : isSafeSpeculativeLoad(AsLoad, &M)))
      continue;
    // Condition 4: disjoint from every other memory reference in the loop.
    // CrossExecution: the group and the other reference can execute in
    // different iterations and different blocks, so no same-execution
    // locality may be assumed.
    bool Overlaps = false;
    for (const AccessRef &Other : MemOps) {
      const Instr &O = Other.BB->instrs()[Other.Idx];
      if (O.memBase() == Key.Base && O.memDisp() == Key.Disp &&
          O.MemSize == Key.Size && (O.Op == Opcode::L || O.Op == Opcode::ST))
        continue; // in the group
      if ((AA ? AA->alias(Rep, O, AliasScope::CrossExecution)
              : alias(Rep, O, AliasScope::CrossExecution)) !=
          AliasResult::NoAlias) {
        Overlaps = true;
        break;
      }
    }
    if (Overlaps)
      continue;

    // --- Apply ---
    bool HasStore = false;
    for (const AccessRef &A : Members)
      if (A.BB->instrs()[A.Idx].Op == Opcode::ST)
        HasStore = true;

    Reg Cache = F.freshGpr();
    BasicBlock *PH = ensurePreheader(F, G, L);

    // Preheader: Cache = [loc].
    Instr Ld = Rep;
    Ld.Op = Opcode::L;
    Ld.Dst = Cache;
    Ld.Src1 = Key.Base;
    Ld.Src2 = Reg();
    Ld.Imm = Key.Disp;
    Ld.MemSize = Key.Size;
    F.assignId(Ld);
    PH->instrs().insert(PH->instrs().begin() +
                            static_cast<long>(PH->firstTerminatorIdx()),
                        std::move(Ld));

    // Rewrite members as register copies.
    for (const AccessRef &A : Members) {
      Instr &I = A.BB->instrs()[A.Idx];
      Instr Copy;
      Copy.Op = Opcode::LR;
      Copy.Id = I.Id;
      if (I.Op == Opcode::L) {
        Copy.Dst = I.Dst;
        Copy.Src1 = Cache;
      } else {
        Copy.Dst = Cache;
        Copy.Src1 = I.Src1;
      }
      I = Copy;
    }

    // Store back on every exit edge.
    if (HasStore) {
      // L.Exits carries stale TermIdx values only if the loop blocks were
      // edited above; member rewrites keep instruction positions, and the
      // preheader insertion does not touch loop blocks, so the edges are
      // still valid.
      for (const CfgEdge &E : L.Exits) {
        BasicBlock *On = splitEdge(F, E);
        Instr St;
        St.Op = Opcode::ST;
        St.Src1 = Cache;
        St.Src2 = Key.Base;
        St.Imm = Key.Disp;
        St.MemSize = Key.Size;
        St.Sym = Rep.Sym;
        F.assignId(St);
        On->instrs().insert(On->instrs().begin(), std::move(St));
      }
    }
    return true; // structure changed; caller recomputes
  }
  return false;
}

} // namespace

bool vsc::speculativeLoadStoreMotion(Function &F, const Module &M,
                                     FunctionAnalyses &FA, bool FlowAlias) {
  bool Any = false;
  bool Changed = true;
  unsigned Guard = 0;
  while (Changed && Guard++ < 64) {
    Changed = false;
    const Cfg &G = FA.cfg();
    const AliasAnalysis *AA = FlowAlias ? &FA.aliasAnalysis() : nullptr;
    // Innermost loops first (deepest first), as the paper recommends when
    // infrequently executed inner-loop accesses might slow an outer loop.
    std::vector<Loop *> Loops;
    for (const auto &L : FA.loops().loops())
      Loops.push_back(L.get());
    std::sort(Loops.begin(), Loops.end(),
              [](Loop *A, Loop *B) { return A->Depth > B->Depth; });
    for (Loop *L : Loops) {
      if (processLoop(F, M, G, *L, AA)) {
        // Motion split edges and rewrote accesses; start the next round
        // from scratch.
        FA.invalidateAll();
        Changed = true;
        Any = true;
        break;
      }
    }
  }
  return Any;
}

bool vsc::speculativeLoadStoreMotion(Function &F, const Module &M) {
  FunctionAnalyses FA(F);
  return speculativeLoadStoreMotion(F, M, FA);
}

bool vsc::speculativeLoadStoreMotion(Module &M) {
  bool Any = false;
  for (auto &F : M.functions())
    Any |= speculativeLoadStoreMotion(*F, M);
  return Any;
}
