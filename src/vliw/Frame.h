//===- vliw/Frame.h - Stack frame protocol --------------------*- C++ -*-===//
///
/// \file
/// The frame protocol shared by prolog tailoring and the register
/// allocator: a function that owns stack storage starts with
/// "SI r1 = r1, FS" and pops with a matching "AI r1 = r1, FS" before every
/// return. growFrame() enlarges FS by a caller-specified number of bytes
/// and returns the displacement (relative to the adjusted r1) where the
/// newly reserved area begins — existing local slots keep their
/// displacements.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_VLIW_FRAME_H
#define VSC_VLIW_FRAME_H

#include "ir/Function.h"

namespace vsc {

/// Detects "SI r1 = r1, imm" at the top of the entry block (the frame
/// adjustment), or null.
Instr *frameAdjustment(Function &F);

/// Ensures the frame protocol exists and grows the frame by \p Extra
/// bytes (inserting the SI/AI pair when the function had no frame).
/// \returns the base displacement of the new area.
int64_t growFrame(Function &F, int64_t Extra);

} // namespace vsc

#endif // VSC_VLIW_FRAME_H
