//===- vliw/Rename.cpp - Live-range renaming in loops -----------------------===//

#include "vliw/Rename.h"

#include "analysis/Liveness.h"
#include "cfg/CfgEdit.h"
#include "cfg/Dominators.h"

#include <algorithm>
#include <cassert>

using namespace vsc;

std::vector<BasicBlock *> vsc::loopChain(const Cfg &G, const Loop &L) {
  std::vector<BasicBlock *> Chain;
  // No calls (implicit physical-register semantics block renaming) and no
  // load-with-update (its base is both source and destination; renaming the
  // chain would need special handling).
  for (BasicBlock *BB : L.Blocks)
    for (const Instr &I : BB->instrs())
      if (I.isCall() || I.isRet() || I.Op == Opcode::LU)
        return {};

  // Each non-header block must have exactly one in-loop predecessor; walk
  // the unique in-loop successor chain from the header.
  BasicBlock *Cur = L.Header;
  std::unordered_set<const BasicBlock *> Visited;
  while (true) {
    Chain.push_back(Cur);
    Visited.insert(Cur);
    BasicBlock *Next = nullptr;
    for (const CfgEdge &E : G.succs(Cur)) {
      if (!L.contains(E.To) || E.To == L.Header)
        continue;
      if (Next && Next != E.To)
        return {}; // branches to two distinct in-loop blocks
      Next = E.To;
    }
    if (!Next)
      break;
    if (Visited.count(Next))
      return {}; // inner cycle not through the header
    unsigned InLoopPreds = 0;
    for (BasicBlock *P : G.preds(Next))
      if (L.contains(P))
        ++InLoopPreds;
    if (InLoopPreds != 1)
      return {}; // join inside the body
    Cur = Next;
  }
  if (Chain.size() != L.Blocks.size())
    return {}; // disconnected shape
  return Chain;
}

bool vsc::renameLoopLiveRanges(Function &F, const Loop &L) {
  Cfg G(F);
  std::vector<BasicBlock *> Chain = loopChain(G, L);
  if (Chain.empty())
    return false;
  // Every back edge must leave from the chain tail: a renamed (non-final)
  // definition would otherwise be the value a mid-chain back edge carries
  // into the next iteration under its ORIGINAL name, which renaming just
  // destroyed. (Same shape restriction enhanced pipeline scheduling has.)
  for (BasicBlock *Latch : L.Latches)
    if (Latch != Chain.back())
      return false;

  RegUniverse U(F);
  Liveness Live(G, U);

  // Registers defined in the loop, and the position of each reg's last def.
  std::unordered_map<Reg, unsigned, RegHash> DefsTotal;
  std::vector<Reg> Tmp;
  for (BasicBlock *BB : Chain)
    for (const Instr &I : BB->instrs()) {
      Tmp.clear();
      I.collectDefs(Tmp);
      for (Reg D : Tmp)
        if (D.isGpr() || D.isCr())
          ++DefsTotal[D];
    }

  // Insert "LR r = r" on every exit edge for loop-defined GPRs live there.
  // (CRs cannot be copied; a CR live at an exit simply keeps its final
  // name, which the renamer below guarantees for last definitions.)
  struct ExitCopies {
    const BasicBlock *Source; ///< in-loop block the edge leaves
    BasicBlock *CopyBlock;
  };
  std::vector<ExitCopies> Exits;
  for (const CfgEdge &E : L.Exits) {
    std::vector<Reg> LiveRegs;
    for (const auto &[R, N] : DefsTotal)
      if (R.isGpr() && Live.isLiveIn(E.To, R))
        LiveRegs.push_back(R);
    std::sort(LiveRegs.begin(), LiveRegs.end());
    if (LiveRegs.empty())
      continue;
    BasicBlock *S = splitEdge(F, E);
    for (Reg R : LiveRegs) {
      Instr Copy;
      Copy.Op = Opcode::LR;
      Copy.Dst = R;
      Copy.Src1 = R;
      F.assignId(Copy);
      S->instrs().insert(S->instrs().begin(), std::move(Copy));
    }
    Exits.push_back(ExitCopies{E.From, S});
  }

  // Condition registers cannot be copied at exits; a CR live at some exit
  // keeps its name throughout.
  std::unordered_set<uint32_t> CrLiveAtExit;
  for (const CfgEdge &E : L.Exits)
    for (const auto &[R, N] : DefsTotal)
      if (R.isCr() && Live.isLiveIn(E.To, R))
        CrLiveAtExit.insert(R.id());

  // Walk the chain, renaming every non-final definition.
  std::unordered_map<Reg, unsigned, RegHash> DefsSeen;
  std::unordered_map<Reg, Reg, RegHash> Cur;
  auto Resolve = [&](Reg R) {
    auto It = Cur.find(R);
    return It == Cur.end() ? R : It->second;
  };

  bool Renamed = false;
  for (BasicBlock *BB : Chain) {
    for (Instr &I : BB->instrs()) {
      // Rewrite explicit register uses.
      const OpcodeInfo &Info = opcodeInfo(I.Op);
      unsigned NumSrcs = Info.NumSrcs;
      if (NumSrcs >= 1 && (I.Src1.isGpr() || I.Src1.isCr()))
        I.Src1 = Resolve(I.Src1);
      if (NumSrcs >= 2 && (I.Src2.isGpr() || I.Src2.isCr()))
        I.Src2 = Resolve(I.Src2);

      // Rename the definition unless it is the register's last in the body.
      if (Info.HasDst && (I.Dst.isGpr() || I.Dst.isCr())) {
        Reg D = I.Dst;
        unsigned Seen = ++DefsSeen[D];
        if (Seen < DefsTotal[D] &&
            !(D.isCr() && CrLiveAtExit.count(D.id()))) {
          Reg Fresh = D.isGpr() ? F.freshGpr() : F.freshCr();
          I.Dst = Fresh;
          Cur[D] = Fresh;
          Renamed = true;
        } else {
          Cur[D] = D;
        }
      }
    }
    // Fix the exit-copy sources hanging off this block with the current
    // names.
    for (const ExitCopies &E : Exits) {
      if (E.Source != BB)
        continue;
      for (Instr &Copy : E.CopyBlock->instrs())
        if (Copy.Op == Opcode::LR)
          Copy.Src1 = Resolve(Copy.Src1);
    }
  }

  // Drop identity copies the renaming did not touch.
  for (const ExitCopies &E : Exits) {
    auto &Ins = E.CopyBlock->instrs();
    Ins.erase(std::remove_if(Ins.begin(), Ins.end(),
                             [](const Instr &I) {
                               return I.Op == Opcode::LR && I.Dst == I.Src1;
                             }),
              Ins.end());
  }
  return Renamed;
}

unsigned vsc::renameInnermostLoops(Function &F, FunctionAnalyses &FA) {
  unsigned Count = 0;
  std::unordered_set<std::string> Done;
  for (unsigned Guard = 0; Guard < 32; ++Guard) {
    bool Changed = false;
    for (Loop *L : FA.loops().innermostLoops()) {
      if (Done.count(L->Header->label()))
        continue;
      Done.insert(L->Header->label());
      if (renameLoopLiveRanges(F, *L)) {
        // Renaming rewrites instructions and may split exit edges.
        FA.invalidateAll();
        ++Count;
        Changed = true;
        break;
      }
    }
    if (!Changed)
      break;
  }
  return Count;
}

unsigned vsc::renameInnermostLoops(Function &F) {
  FunctionAnalyses FA(F);
  return renameInnermostLoops(F, FA);
}
