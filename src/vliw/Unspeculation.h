//===- vliw/Unspeculation.h - Push speculative code below branches -*- C++ -*-===//
///
/// \file
/// The paper's "Unspeculation": discover operations whose results do not
/// contribute on one side of a conditional branch and push them down onto
/// the branch edge where their destinations are live, making them
/// non-speculative there. Per the paper's algorithm:
///
///  1. blocks are first physically reordered in reverse postorder (with
///     patch-up branches to preserve semantics);
///  2. for each conditional branch, the instructions preceding it are
///     examined in reverse order, each deciding to stay, go to the left
///     edge, or go to the right edge;
///  3. moves chain: pushing one instruction down can enable the one above
///     it, and code can be pushed repeatedly under successive branches
///     (the pass iterates to a fixed point);
///  4. code is never pushed into a loop from the outside, but speculative
///     code inside a loop IS pushed out through its exits (including BCT
///     fallthrough exits).
///
/// Move legality (the paper's conditions): the destinations are dead on
/// exactly one target edge; no instruction between the candidate and the
/// branch sets its sources or destinations, uses its destinations, or (for
/// loads) may store to the loaded location; and the candidate has no side
/// effects. Moving down executes the operation strictly less often, so
/// potentially-trapping operations (loads, DIV) are also eligible.
///
/// Deviation from the paper (recorded in DESIGN.md): we move individual
/// instructions rather than whole single-entry single-exit groups;
/// iteration to a fixed point recovers the common group cases since
/// straight-line groups drain one instruction at a time.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_VLIW_UNSPECULATION_H
#define VSC_VLIW_UNSPECULATION_H

#include "ir/Function.h"
#include "pm/Analysis.h"

namespace vsc {

/// Runs unspeculation on \p F. \returns true if anything moved.
/// \p FlowAlias selects the flow-sensitive disambiguation tier for the
/// "may store to the loaded location" legality check.
bool unspeculate(Function &F);
bool unspeculate(Function &F, FunctionAnalyses &FA, bool FlowAlias = true);

/// Step 1 only: physically reorder the blocks in reverse postorder,
/// inserting patch-up branches. Exposed separately because profile-directed
/// block reordering reuses it with a different order.
void reorderReversePostorder(Function &F);

} // namespace vsc

#endif // VSC_VLIW_UNSPECULATION_H
