//===- vliw/Unspeculation.cpp - Push speculative code below branches -------===//

#include "vliw/Unspeculation.h"

#include "analysis/Liveness.h"
#include "analysis/MemAlias.h"
#include "analysis/ValueTrack.h"
#include "cfg/CfgEdit.h"

#include <algorithm>
#include <cassert>

using namespace vsc;

void vsc::reorderReversePostorder(Function &F) {
  Cfg G(F);
  layoutBlocks(F, G.rpo());
}

namespace {

/// \returns true if \p I may be pushed below a conditional branch at all.
bool isPushable(const Instr &I) {
  if (I.isTerminator() || I.isCall() || I.isStore())
    return false;
  if (I.isMemAccess() && I.IsVolatile)
    return false;
  if (I.Op == Opcode::MTCTR)
    return false; // CTR is loop state read by a branch
  if (!opcodeInfo(I.Op).HasDst)
    return false;
  return true;
}

/// The paper's rule 2: no instruction between the candidate and the branch
/// (inclusive of the terminator suffix) may set the candidate's sources or
/// destinations, use its destinations, or store over a loaded location.
bool betweenInstrsAllowMove(const BasicBlock &BB, size_t CandIdx,
                            const Instr &Cand, const AliasAnalysis *AA) {
  std::vector<Reg> CandUses, CandDefs, Tmp;
  Cand.collectUses(CandUses);
  Cand.collectDefs(CandDefs);
  auto Contains = [](const std::vector<Reg> &V, Reg R) {
    return std::find(V.begin(), V.end(), R) != V.end();
  };

  for (size_t J = CandIdx + 1; J != BB.size(); ++J) {
    const Instr &Between = BB.instrs()[J];
    Tmp.clear();
    Between.collectDefs(Tmp);
    for (Reg D : Tmp)
      if (Contains(CandUses, D) || Contains(CandDefs, D))
        return false; // 2a: sets a source or destination
    Tmp.clear();
    Between.collectUses(Tmp);
    for (Reg Use : Tmp)
      if (Contains(CandDefs, Use))
        return false; // 2b: uses a destination
    // 2c: may clobber the loaded location. SameExecution is sound here
    // even for the syntactic tier: rule 2a has already rejected any
    // in-between def of the candidate's sources (its base register
    // included), so no shared base is redefined between the two accesses.
    if (Cand.isLoad() &&
        (Between.isCall() ||
         (Between.isStore() &&
          (AA ? AA->alias(Cand, Between, AliasScope::SameExecution)
              : alias(Cand, Between, AliasScope::SameExecution)) !=
              AliasResult::NoAlias)))
      return false;
  }
  return true;
}

/// One unspeculation step: finds the first legal move and performs it.
/// \returns true if something moved. Every move ends in splitEdge, whose
/// block insertion bumps the CFG epoch, so the cache refreshes itself on
/// the next fetch; a fruitless scan leaves the cache warm.
bool unspeculateOnce(Function &F, FunctionAnalyses &FA, bool FlowAlias) {
  const Cfg &G = FA.cfg();
  const Liveness &L = FA.liveness();
  const AliasAnalysis *AA = FlowAlias ? &FA.aliasAnalysis() : nullptr;

  for (auto &BBPtr : F.blocks()) {
    BasicBlock *BB = BBPtr.get();
    if (!G.isReachable(BB))
      continue;
    size_t FirstTerm = BB->firstTerminatorIdx();
    if (FirstTerm == BB->size())
      continue;
    const Instr &Br = BB->instrs()[FirstTerm];
    if (!Br.isCondBranch())
      continue;

    // The two candidate edges.
    const std::vector<CfgEdge> &Succs = G.succs(BB);
    const CfgEdge *TakenEdge = nullptr, *OtherEdge = nullptr;
    for (const CfgEdge &E : Succs) {
      if (E.IsTaken && E.TermIdx == static_cast<int>(FirstTerm))
        TakenEdge = &E;
      else
        OtherEdge = &E;
    }
    if (!TakenEdge || !OtherEdge)
      continue;
    // BCT's taken edge is the loop back edge; only the exit (fallthrough)
    // side receives pushed code ("pushed out of exits").
    bool AllowTaken = Br.Op != Opcode::BCT;

    std::vector<Reg> Defs;
    for (size_t I = FirstTerm; I-- > 0;) {
      const Instr &Cand = BB->instrs()[I];
      if (!isPushable(Cand))
        continue;
      if (!betweenInstrsAllowMove(*BB, I, Cand, AA))
        continue;

      Defs.clear();
      Cand.collectDefs(Defs);
      auto DeadAt = [&](const CfgEdge &E) {
        for (Reg D : Defs)
          if (L.isLiveIn(E.To, D))
            return false;
        return true;
      };
      bool DeadTaken = DeadAt(*TakenEdge);
      bool DeadOther = DeadAt(*OtherEdge);
      // Dead on exactly one side: push to the live side.
      const CfgEdge *Dest = nullptr;
      if (DeadTaken && !DeadOther)
        Dest = OtherEdge;
      else if (DeadOther && !DeadTaken && AllowTaken)
        Dest = TakenEdge;
      if (!Dest)
        continue;

      // Split the edge BEFORE erasing: erasing first would invalidate the
      // edge's TermIdx (it indexes the branch within this block).
      Instr Moved = Cand;
      BasicBlock *S = splitEdge(F, *Dest);
      BB->instrs().erase(BB->instrs().begin() + static_cast<long>(I));
      S->instrs().insert(S->instrs().begin(), std::move(Moved));
      return true;
    }
  }
  return false;
}

} // namespace

bool vsc::unspeculate(Function &F, FunctionAnalyses &FA, bool FlowAlias) {
  reorderReversePostorder(F);
  straighten(F);
  bool Any = false;
  // Each step performs one move and invalidates analyses; bound the loop
  // generously (every instruction can move only a bounded number of times
  // since moves go strictly downward in the dominator order, but cap it
  // against surprises).
  size_t Cap = F.instrCount() * 8 + 64;
  while (Cap-- > 0 && unspeculateOnce(F, FA, FlowAlias))
    Any = true;
  straighten(F);
  return Any;
}

bool vsc::unspeculate(Function &F) {
  FunctionAnalyses FA(F);
  return unspeculate(F, FA);
}
