//===- vliw/BlockExpansion.h - Basic block expansion ----------*- C++ -*-===//
///
/// \file
/// The paper's "Basic Block Expansion": remove taken unconditional branches
/// from the execution trace by copying code from the branch target. The
/// RS/6000 stalls when an untaken conditional branch is followed
/// immediately by a taken unconditional branch; machine-specific rules
/// (MachineModel::ExpansionObjective) say how many non-branch instructions
/// are needed between a compare, a dependent conditional branch and an
/// unconditional branch to avoid the stall.
///
/// For each unconditional branch lacking that separation, the pass walks
/// the code at the target — past conditional branches and calls (which
/// reset the objective), following further unconditional branches, not
/// copying labels — until it has gathered enough consecutive non-branch
/// instructions, hits a return/branch-on-count, revisits an instruction, or
/// exceeds the window. Good stopping points are instructions immediately
/// preceding conditional branches. The gathered chain is cloned in place of
/// the unconditional branch (the clone ends with a branch to the
/// instruction after the stopping point), so the original taken branch
/// disappears from the trace.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_VLIW_BLOCKEXPANSION_H
#define VSC_VLIW_BLOCKEXPANSION_H

#include "ir/Function.h"
#include "machine/MachineModel.h"
#include "pm/Analysis.h"

namespace vsc {

struct ExpansionOptions {
  /// Maximum instructions scanned per branch ("the window size").
  unsigned Window = 24;
  /// Maximum expansions applied per function (code-growth bound).
  unsigned MaxExpansions = 16;
};

/// Runs basic block expansion under \p MM's rules. \returns true on change.
bool expandBasicBlocks(Function &F, const MachineModel &MM,
                       const ExpansionOptions &Opts = {});
bool expandBasicBlocks(Function &F, const MachineModel &MM,
                       const ExpansionOptions &Opts, FunctionAnalyses &FA);

} // namespace vsc

#endif // VSC_VLIW_BLOCKEXPANSION_H
