//===- vliw/LimitedCombine.h - Limited combining --------------*- C++ -*-===//
///
/// \file
/// The paper's "Limited Combining": collapse a register copy (LR rD=rS) or
/// load-immediate (LI rD=imm) into its later users, even when they sit in
/// other basic blocks. The search walks forward from the starting
/// instruction, through fallthroughs and unconditional branches, possibly
/// across join points, until the last use of rD. If neither rD nor rS is
/// redefined on the way, the uses are rewritten (rS substituted, or the
/// immediate folded into immediate-form opcodes) and the starting
/// instruction is deleted. When the walk crossed a join point, the walked
/// sequence is duplicated in place of the starting instruction and closed
/// with a branch to the instruction following the last use, leaving the
/// original sequence for the paths that join mid-way — exactly the code
/// shape of the paper's example. Unreachable originals are cleaned by
/// standard unreachable-code elimination.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_VLIW_LIMITEDCOMBINE_H
#define VSC_VLIW_LIMITEDCOMBINE_H

#include "ir/Function.h"
#include "pm/Analysis.h"

namespace vsc {

struct CombineOptions {
  /// Maximum instructions walked past the starting instruction.
  unsigned Window = 40;
  /// Allow duplication across join points (the "limited" expansion).
  bool AllowDuplication = true;
  /// Enable store-to-load forwarding through the flow-sensitive alias
  /// analysis: a doubleword load that must-alias an earlier same-block
  /// store (with only provably-disjoint stores in between) becomes an LR
  /// from the stored register, which the combining walk then collapses.
  bool FlowAlias = true;
};

/// Runs limited combining to a fixed point. \returns true on change.
bool limitedCombine(Function &F, const CombineOptions &Opts = {});
bool limitedCombine(Function &F, const CombineOptions &Opts,
                    FunctionAnalyses &FA);

} // namespace vsc

#endif // VSC_VLIW_LIMITEDCOMBINE_H
