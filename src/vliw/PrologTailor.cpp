//===- vliw/PrologTailor.cpp - Callee-save shrink wrapping -------------------===//

#include "vliw/PrologTailor.h"

#include "cfg/CfgEdit.h"
#include "cfg/Dominators.h"
#include "cfg/Loops.h"
#include "vliw/Frame.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace vsc;

namespace {

const char *SpillTag = "$csave";

/// Callee-saved registers written anywhere in \p F, in id order.
std::vector<Reg> killedCalleeSaved(const Function &F) {
  std::vector<bool> Killed(32, false);
  std::vector<Reg> Tmp;
  for (const auto &BB : F.blocks())
    for (const Instr &I : BB->instrs()) {
      Tmp.clear();
      I.collectDefs(Tmp);
      for (Reg D : Tmp)
        if (D.isCalleeSaved())
          Killed[D.id()] = true;
    }
  std::vector<Reg> Out;
  for (uint32_t Id = 13; Id <= 31; ++Id)
    if (Killed[Id])
      Out.push_back(Reg::gpr(Id));
  return Out;
}

Instr makeSpill(Function &F, Reg R, int64_t Disp, bool IsRestore) {
  Instr I;
  if (IsRestore) {
    I.Op = Opcode::L;
    I.Dst = R;
    I.Src1 = regs::sp();
  } else {
    I.Op = Opcode::ST;
    I.Src1 = R;
    I.Src2 = regs::sp();
  }
  I.Imm = Disp;
  I.MemSize = 8;
  I.Sym = SpillTag;
  F.assignId(I);
  return I;
}

/// \returns blocks reachable from \p From (inclusive).
std::vector<BasicBlock *> reachableFrom(const Cfg &G, BasicBlock *From) {
  std::vector<BasicBlock *> Work{From}, Out;
  std::unordered_set<const BasicBlock *> Seen{From};
  while (!Work.empty()) {
    BasicBlock *BB = Work.back();
    Work.pop_back();
    Out.push_back(BB);
    for (const CfgEdge &E : G.succs(BB))
      if (Seen.insert(E.To).second)
        Work.push_back(E.To);
  }
  return Out;
}

} // namespace

unsigned vsc::insertPrologEpilog(Function &F, bool Tailored,
                                 FunctionAnalyses &FA) {
  std::vector<Reg> Regs = killedCalleeSaved(F);
  if (Regs.empty())
    return 0;
  int64_t Extra = static_cast<int64_t>(8 * Regs.size());
  int64_t SpillBase = growFrame(F, Extra);
  auto SlotOf = [&](Reg R) {
    auto It = std::find(Regs.begin(), Regs.end(), R);
    return SpillBase + 8 * (It - Regs.begin());
  };

  // growFrame edited instructions without touching the block list; any
  // caches carried over from earlier stages are stale now.
  FA.invalidateAll();
  const Cfg &G = FA.cfg();
  const Dominators &Dom = FA.dominators();
  const LoopInfo &LI = FA.loops();

  for (Reg R : Regs) {
    // Save placement.
    BasicBlock *SavePoint = F.entry();
    if (Tailored) {
      // Nearest common dominator of all kills.
      BasicBlock *Ncd = nullptr;
      std::vector<Reg> Tmp;
      for (auto &BBPtr : F.blocks()) {
        BasicBlock *BB = BBPtr.get();
        if (!G.isReachable(BB))
          continue;
        bool Kills = false;
        for (const Instr &I : BB->instrs()) {
          if (!I.Sym.empty() && I.Sym == SpillTag)
            continue;
          Tmp.clear();
          I.collectDefs(Tmp);
          if (std::find(Tmp.begin(), Tmp.end(), R) != Tmp.end())
            Kills = true;
        }
        if (!Kills)
          continue;
        if (!Ncd) {
          Ncd = BB;
          continue;
        }
        // Walk both up the dominator tree to their common ancestor.
        while (Ncd != BB) {
          if (!Dom.dominates(Ncd, BB))
            Ncd = Dom.idom(Ncd) ? Dom.idom(Ncd) : F.entry();
          else
            break;
        }
      }
      if (!Ncd)
        Ncd = F.entry();
      // Never inside a loop.
      while (LI.loopFor(Ncd))
        Ncd = Dom.idom(Ncd) ? Dom.idom(Ncd) : F.entry();
      // Close the region: every block reachable from the save point must
      // be dominated by it, else a join could be reached saved on one path
      // and unsaved on another.
      while (Ncd != F.entry()) {
        bool Closed = true;
        for (BasicBlock *RB : reachableFrom(G, Ncd))
          if (!Dom.dominates(Ncd, RB))
            Closed = false;
        if (Closed)
          break;
        Ncd = Dom.idom(Ncd) ? Dom.idom(Ncd) : F.entry();
      }
      SavePoint = Ncd;
    }

    // Insert the save at the top of the save point (after the frame
    // adjustment in the entry block).
    {
      size_t At = 0;
      if (SavePoint == F.entry() && frameAdjustment(F))
        At = 1;
      SavePoint->instrs().insert(SavePoint->instrs().begin() +
                                     static_cast<long>(At),
                                 makeSpill(F, R, SlotOf(R), false));
    }

    // Restores before every return reachable from the save point.
    for (BasicBlock *RB : reachableFrom(G, SavePoint)) {
      for (size_t I = 0; I != RB->size(); ++I) {
        if (!RB->instrs()[I].isRet())
          continue;
        // Before the epilogue frame pop when present.
        size_t At = I;
        if (At > 0) {
          const Instr &Prev = RB->instrs()[At - 1];
          if (Prev.Op == Opcode::AI && Prev.Dst == regs::sp() &&
              Prev.Src1 == regs::sp())
            --At;
        }
        RB->instrs().insert(RB->instrs().begin() + static_cast<long>(At),
                            makeSpill(F, R, SlotOf(R), true));
        ++I;
      }
    }
  }
  return static_cast<unsigned>(Regs.size());
}

unsigned vsc::insertPrologEpilog(Function &F, bool Tailored) {
  FunctionAnalyses FA(F);
  return insertPrologEpilog(F, Tailored, FA);
}

std::string vsc::verifyUnwindInvariant(Function &F) {
  Cfg G(F);
  // Forward dataflow of the saved set (bitmask over r13..r31). A block's
  // in-state must be identical along every incoming edge.
  std::unordered_map<const BasicBlock *, uint32_t> InState;
  std::unordered_map<const BasicBlock *, bool> HasIn;
  std::vector<BasicBlock *> Work{F.entry()};
  InState[F.entry()] = 0;
  HasIn[F.entry()] = true;

  auto MaskOf = [](Reg R) { return 1u << (R.id() - 13); };

  while (!Work.empty()) {
    BasicBlock *BB = Work.back();
    Work.pop_back();
    uint32_t Saved = InState[BB];
    for (const Instr &I : BB->instrs()) {
      if (I.Sym == SpillTag && I.Op == Opcode::ST)
        Saved |= MaskOf(I.Src1);
      else if (I.Sym == SpillTag && I.Op == Opcode::L)
        Saved &= ~MaskOf(I.Dst);
      else if (I.isRet() && Saved != 0)
        return F.name() + ":" + BB->label() +
               ": return with unrestored saved registers";
    }
    for (const CfgEdge &E : G.succs(BB)) {
      auto It = HasIn.find(E.To);
      if (It != HasIn.end() && It->second) {
        if (InState[E.To] != Saved)
          return F.name() + ":" + E.To->label() +
                 ": reached with differing saved sets (the unwind "
                 "invariant is violated)";
        continue;
      }
      HasIn[E.To] = true;
      InState[E.To] = Saved;
      Work.push_back(E.To);
    }
  }
  return "";
}
