//===- vliw/Pipeline.h - Optimization pipelines ---------------*- C++ -*-===//
///
/// \file
/// The compiler driver: sequences the passes the way the paper's prototype
/// does. Three levels exist:
///
///  * OptLevel::None      — as written, plus classic prologs.
///  * OptLevel::Classical — the "xlc -O" baseline: classical scalar
///    optimizations plus classic (entry) prologs.
///  * OptLevel::Vliw      — the paper's "-O3" prototype: classical, then
///    speculative load/store motion, unspeculation, unrolling + live-range
///    renaming, enhanced pipeline scheduling, global scheduling, limited
///    combining, cleanup, basic block expansion and tailored prologs. With
///    a profile attached, PDF block reordering, branch reversal and the
///    profile scheduling heuristic run as well.
///
/// Every pass-enable flag exists so the ablation benches (experiment A1)
/// can knock out one technique at a time.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_VLIW_PIPELINE_H
#define VSC_VLIW_PIPELINE_H

#include "analysis/MemAlias.h"
#include "audit/Audit.h"
#include "ir/Module.h"
#include "machine/MachineModel.h"
#include "oracle/ExecOracle.h"
#include "pipelining/ExactPipeliner.h"
#include "sim/Simulator.h"

#include <functional>
#include <utility>

namespace vsc {

class ProfileData;

enum class OptLevel { None, Classical, Vliw };

/// Aggregate counters the driver can export after a run (see
/// bench_compile_time's cache-hit column).
struct PipelineStats {
  /// Analysis-cache hits/misses across every function (pm/Analysis.h).
  uint64_t AnalysisHits = 0;
  uint64_t AnalysisMisses = 0;
  /// Measured PDF-layout gate decision: -1 the gate did not run, 0 the
  /// layout was rolled back, 1 it was kept. Cross-process experiments
  /// compare this (scripts/ci.sh checks pdf_workflow against vscc).
  int PdfLayoutKept = -1;
  /// Per-stage disambiguation-query deltas (analysis/MemAlias.h counters,
  /// snapshotted by the PassAudit checkpoints — empty unless Audit is
  /// enabled). Per-function checkpoint names "pass(fn)" are merged under
  /// the bare pass name; bench_audit_overhead prints the table.
  std::vector<std::pair<std::string, AliasQueryCounters>> AliasQueriesByStage;
  /// One record per chain-shaped innermost loop the pipelining pass
  /// attempted, sorted by (function, header) — byte-identical at every
  /// thread count. Empty unless ExactPipelining != Off.
  std::vector<LoopPipelineRecord> PipelineLoops;
};

struct PipelineOptions {
  MachineModel Machine;
  unsigned UnrollFactor = 2;
  /// Inline small pure-leaf callees first (exposes call-bearing loops to
  /// renaming and pipeline scheduling). Off by default so the SPECint
  /// comparison measures the paper's techniques in isolation; see
  /// bench_inlining.
  bool Inlining = false;
  bool LoadStoreMotion = true;
  bool Unspeculation = true;
  bool UnrollAndRename = true;
  bool Pipelining = true;
  bool GlobalScheduling = true;
  bool Combining = true;
  bool BlockExpansion = true;
  bool TailorProlog = true;
  /// Insert callee-save prologs/epilogs at all (needed for correctness of
  /// functions killing r13..r31; off only for IR that manages them
  /// manually).
  bool InsertPrologs = true;
  /// Run linear-scan register allocation after optimization (and before
  /// prolog insertion, so exactly the callee-saved registers the
  /// allocator used get saved). Off by default: the paper measures
  /// pre-allocation code, and the simulator models post-allocation
  /// semantics either way.
  bool AllocateRegisters = false;
  /// Profile for PDF (reordering, reversal, scheduling heuristics).
  const ProfileData *Profile = nullptr;
  /// Training input for the measured PDF-layout gate: when set, the
  /// layout applications are kept only if simulated cycles on this input
  /// improve (see pdfLayoutMeasured). Null keeps them unconditionally.
  const RunOptions *TrainInput = nullptr;
  /// Battery form of the measured gate (pdf/PdfExperiment.h): cycles are
  /// summed over every training input through one predecoded engine,
  /// fanned out over Threads workers. Takes precedence over TrainInput.
  const std::vector<RunOptions> *TrainBattery = nullptr;
  /// Trace-scheduling-style superblock formation (requires Profile): tail-
  /// duplicate hot traces before scheduling, the IMPACT-flavoured baseline
  /// the paper contrasts its profile-independent techniques with. Off by
  /// default; bench_superblock compares.
  bool Superblocks = false;
  /// Disambiguate memory with the flow-sensitive alias tier
  /// (analysis/ValueTrack.h) in every consumer pass — dependence building,
  /// load/store motion, unspeculation, LVN/LICM, combining. Off falls back
  /// to the purely syntactic per-instruction MemRegion comparison; this is
  /// the ablation axis bench_alias measures.
  bool FlowSensitiveAlias = true;
  /// Exact software pipelining (pipelining/ExactPipeliner.h). Grade runs
  /// the branch-and-bound modulo scheduler as a per-loop oracle and only
  /// records achieved-II vs. min-II vs. exact-II into Stats->PipelineLoops;
  /// Apply additionally substitutes the exact kernel when it strictly
  /// beats the heuristic's steady state. Requires Pipelining.
  ExactPipelineMode ExactPipelining = ExactPipelineMode::Off;
  /// Budget knobs for the exact search. Folded into optionsFingerprint
  /// (they change Apply-mode output bytes).
  ExactPipelinerOptions ExactPipeline;
  /// Dynamically validate NoAlias claims (audit/AliasAudit.h): the claims
  /// the pipeline's own disambiguation queries issue are collected during
  /// the run, and an "alias-audit" module pass (before renumbering, since
  /// claims are keyed by instruction id) re-enumerates claims on the final
  /// module, simulates the audit battery with an effective-address watcher
  /// and aborts if any claimed-NoAlias pair overlapped inside its window.
  bool AliasAudit = false;
  /// Inputs the alias audit simulates; null uses defaultAliasAuditBattery().
  const std::vector<RunOptions> *AliasAuditBattery = nullptr;
  /// Verify the module between pass stages (aborts with the stage name on
  /// breakage) — on by default; this project treats it as a regression net.
  bool Verify = true;
  /// Semantic pass auditing (audit/PassAudit.h): Off, Boundaries (audit at
  /// the same module-level stage boundaries Verify checks), or Full
  /// (additionally after every individual VLIW pass inside the per-function
  /// pipeline). On failure the pipeline aborts, naming the pass that broke
  /// the invariant and printing an IR diff of the offending function.
  AuditLevel Audit = AuditLevel::Off;
  /// Differential execution oracle (oracle/ExecOracle.h): Off, Boundaries
  /// (execute changed functions against their snapshot at the stage
  /// boundaries Verify checks) or Full (additionally after every
  /// individual VLIW pass). On divergence the pipeline aborts, naming the
  /// pass and printing the reproducing input plus an interleaved execution
  /// trace. PageZeroReadable is taken from Machine, not from OracleCfg.
  OracleLevel Oracle = OracleLevel::Off;
  OracleOptions OracleCfg;
  /// Worker threads for the per-function pass stages. 0 defers to the
  /// VSC_THREADS environment variable (default 1); values are clamped to
  /// [1, 64]. Output is byte-identical at every thread count; module-level
  /// stages (inlining, PDF layout) always run serially, and Full-level
  /// audit/oracle instrumentation forces the whole run serial because its
  /// per-pass checkpoints observe cross-function state mid-chain.
  unsigned Threads = 0;
  /// When set, analysis-cache counters are accumulated here after the run.
  PipelineStats *Stats = nullptr;

  PipelineOptions();
};

/// Optimizes \p M in place at level \p L.
void optimize(Module &M, OptLevel L, const PipelineOptions &Opts);
inline void optimize(Module &M, OptLevel L) {
  optimize(M, L, PipelineOptions());
}

/// Canonical fingerprint of every option that can change the bytes of the
/// optimized module: the level, every pass toggle, the unroll factor, and
/// the machine parameters (machineFingerprint). Two optimize() runs over
/// modules with equal content and equal option fingerprints produce
/// byte-identical output. Deliberately EXCLUDED: Threads (byte-identical
/// at every count by the parallel driver's contract), Stats, and the
/// verification/audit/oracle levels (observers that abort rather than
/// transform). Profile, TrainInput and TrainBattery are folded in as
/// present/absent markers only — a caller keying cached artifacts (the
/// compile service) must additionally fold the profile and gate-input
/// CONTENT hashes into its key.
uint64_t optionsFingerprint(OptLevel L, const PipelineOptions &Opts);

/// Clone-and-optimize: the shape every staged driver wants (PDF baseline
/// and guided compiles, the compile service's cached compile stage).
/// \p Source is never modified.
std::unique_ptr<Module> optimizedClone(const Module &Source, OptLevel L,
                                       const PipelineOptions &Opts);

/// Human-readable name for reports.
const char *optLevelName(OptLevel L);

/// Installs a hook whose string is printed to stderr right before the
/// pipeline aborts on a verification/audit/oracle failure. Harnesses use
/// it to attach reproduction context (e.g. the fuzz seed and generated
/// source) to otherwise-anonymous aborts. Pass nullptr to clear.
void setPipelineFailureHook(std::function<std::string()> Hook);

} // namespace vsc

#endif // VSC_VLIW_PIPELINE_H
