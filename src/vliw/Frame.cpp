//===- vliw/Frame.cpp - Stack frame protocol -----------------------------------===//

#include "vliw/Frame.h"

#include <cassert>

using namespace vsc;

Instr *vsc::frameAdjustment(Function &F) {
  BasicBlock *Entry = F.entry();
  if (!Entry || Entry->empty())
    return nullptr;
  Instr &I = Entry->instrs().front();
  if (I.Op == Opcode::SI && I.Dst == regs::sp() && I.Src1 == regs::sp())
    return &I;
  return nullptr;
}

int64_t vsc::growFrame(Function &F, int64_t Extra) {
  Instr *Adj = frameAdjustment(F);
  int64_t OrigFS = 0;
  if (Adj) {
    OrigFS = Adj->Imm;
    Adj->Imm += Extra;
  } else {
    Instr SI;
    SI.Op = Opcode::SI;
    SI.Dst = regs::sp();
    SI.Src1 = regs::sp();
    SI.Imm = Extra;
    F.assignId(SI);
    F.entry()->instrs().insert(F.entry()->instrs().begin(), std::move(SI));
  }
  // Fix (or insert) the epilogue pops.
  for (auto &BBPtr : F.blocks()) {
    BasicBlock *BB = BBPtr.get();
    for (size_t I = 0; I != BB->size(); ++I) {
      if (!BB->instrs()[I].isRet())
        continue;
      if (I > 0) {
        Instr &Prev = BB->instrs()[I - 1];
        if (Prev.Op == Opcode::AI && Prev.Dst == regs::sp() &&
            Prev.Src1 == regs::sp() && Prev.Imm == OrigFS) {
          Prev.Imm += Extra;
          continue;
        }
      }
      assert(OrigFS == 0 &&
             "function adjusts r1 but returns without the epilogue");
      Instr AI;
      AI.Op = Opcode::AI;
      AI.Dst = regs::sp();
      AI.Src1 = regs::sp();
      AI.Imm = Extra;
      F.assignId(AI);
      BB->instrs().insert(BB->instrs().begin() + static_cast<long>(I),
                          std::move(AI));
      ++I;
    }
  }
  return OrigFS;
}
