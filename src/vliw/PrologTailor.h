//===- vliw/PrologTailor.h - Callee-save shrink wrapping ------*- C++ -*-===//
///
/// \file
/// The paper's "Prolog Tailoring": delay the saving of killed callee-saved
/// registers (r13..r31 under the RS/6000 linkage convention) from the
/// function entry to the latest point that still satisfies the unwind
/// invariant the paper introduces for exception handling:
///
///   "at any point in the procedure, all paths reaching this point from
///    the start of the procedure have the same set of saved registers"
///
/// Placement: each killed register's save is placed at the nearest common
/// dominator of its kills, hoisted (a) out of loops — register saves are
/// never pushed inside loops — and (b) upward until the dominated region
/// is closed (every block reachable from the save point is dominated by
/// it), which is exactly what makes the invariant hold. Restores are
/// placed before every return reachable from the save point.
///
/// This dominator-closure placement substitutes for the paper's
/// biconnected-component tree + MustKill formulation; it enforces the same
/// invariant and produces the same code shape on the paper's example
/// (DESIGN.md records the substitution). verifyUnwindInvariant() checks the
/// invariant by forward dataflow and is used by the tests.
///
/// Frame protocol: if the entry starts with "SI r1 = r1, FS" the pass grows
/// FS by the spill area and places slots at [FS, FS+8*N); otherwise it
/// inserts the frame adjustment itself. Every RET must be preceded by the
/// matching "AI r1 = r1, FS" (inserted when absent). Spills carry the
/// "$csave" annotation so the checker can recognise them.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_VLIW_PROLOGTAILOR_H
#define VSC_VLIW_PROLOGTAILOR_H

#include "ir/Function.h"
#include "pm/Analysis.h"

#include <string>

namespace vsc {

/// Inserts callee-save spills/reloads for every killed r13..r31.
/// \p Tailored false = classic prolog (all saves at entry, all restores at
/// every return); true = the paper's tailored placement.
/// \returns number of registers saved.
unsigned insertPrologEpilog(Function &F, bool Tailored);
unsigned insertPrologEpilog(Function &F, bool Tailored,
                            FunctionAnalyses &FA);

/// Checks the paper's unwind invariant on a function processed by
/// insertPrologEpilog: every join point must be reached with one unique
/// saved-register set, and every return must restore exactly the saved
/// set. \returns "" when the invariant holds, else a diagnostic.
std::string verifyUnwindInvariant(Function &F);

} // namespace vsc

#endif // VSC_VLIW_PROLOGTAILOR_H
