//===- vliw/Unroll.h - Loop unrolling -------------------------*- C++ -*-===//
///
/// \file
/// Loop unrolling for the scheduling pipeline ("The loops are unrolled
/// prior to scheduling and live range renaming is performed, to increase
/// scheduling opportunities"). The loop body — which may contain arbitrary
/// internal control flow and side exits — is cloned Factor-1 times; back
/// edges of copy k are retargeted to the header of copy k+1, the last
/// copy's back edges return to the original header, and exits keep their
/// original targets.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_VLIW_UNROLL_H
#define VSC_VLIW_UNROLL_H

#include "cfg/Loops.h"
#include "ir/Function.h"
#include "pm/Analysis.h"

namespace vsc {

/// Unrolls \p L by \p Factor (>= 2). \p L must come from a LoopInfo of the
/// current \p F; the function's CFG analyses are invalidated. BCT loops are
/// legal: each copy contains its own count-decrementing branch, so trip
/// semantics are preserved. \returns true on success (false for loops this
/// implementation refuses, e.g. Factor < 2).
bool unrollLoop(Function &F, const Loop &L, unsigned Factor);

/// Unrolls every innermost loop of \p F whose body has at most
/// \p MaxBodyInstrs instructions by \p Factor. \returns number unrolled.
unsigned unrollInnermostLoops(Function &F, unsigned Factor,
                              size_t MaxBodyInstrs = 64);
unsigned unrollInnermostLoops(Function &F, unsigned Factor,
                              size_t MaxBodyInstrs, FunctionAnalyses &FA);

} // namespace vsc

#endif // VSC_VLIW_UNROLL_H
