//===- cfg/CfgEdit.h - CFG surgery utilities ------------------*- C++ -*-===//
///
/// \file
/// Control-flow-graph editing primitives shared by the optimization passes:
/// edge splitting, preheader creation, physical block reordering,
/// unreachable-code elimination, straightening and branch simplification
/// (the paper relies on "standard code straightening optimizations of the
/// XLC compiler" after its reordering steps; these are ours).
///
/// All functions invalidate previously computed Cfg views.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_CFG_CFGEDIT_H
#define VSC_CFG_CFGEDIT_H

#include "cfg/Cfg.h"
#include "cfg/Loops.h"

namespace vsc {

/// Splits \p E by inserting a fresh empty block on it. For a fallthrough
/// edge the new block is placed between the two blocks in layout; for a
/// taken edge the new block is appended (ending with "B To") and the branch
/// identified by E.TermIdx is retargeted. \returns the new block.
BasicBlock *splitEdge(Function &F, const CfgEdge &E);

/// \returns the preheader of \p L (the unique out-of-loop predecessor of
/// the header whose only successor is the header), creating one if needed.
/// \p G must be the Cfg the loop was computed from and is invalidated when
/// a block is created (the caller should rebuild if it keeps using it).
BasicBlock *ensurePreheader(Function &F, const Cfg &G, Loop &L);

/// Physically reorders blocks into \p Order (which must be a permutation of
/// the reachable blocks; unreachable blocks are appended at the end), then
/// inserts unconditional branches wherever a block's fallthrough successor
/// changed, preserving semantics — step 1 of the paper's unspeculation
/// algorithm and the core of PDF block reordering.
void layoutBlocks(Function &F, const std::vector<BasicBlock *> &Order);

/// Removes blocks unreachable from the entry. \returns number removed.
size_t removeUnreachableBlocks(Function &F);

/// Branch cleanups: deletes unconditional branches to the next block in
/// layout, conditional branches whose target equals their fallthrough,
/// threads jumps to empty forwarding blocks, and merges single-pred,
/// single-succ straight-line chains. Iterates to a fixed point.
/// \returns true if anything changed.
bool straighten(Function &F);

} // namespace vsc

#endif // VSC_CFG_CFGEDIT_H
