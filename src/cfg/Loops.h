//===- cfg/Loops.h - Natural loop detection -------------------*- C++ -*-===//
///
/// \file
/// Natural-loop discovery from back edges (an edge T->H where H dominates
/// T), assembled into a nesting forest. Loops are the unit of work for
/// load/store motion out of loops, unrolling and enhanced pipeline
/// scheduling.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_CFG_LOOPS_H
#define VSC_CFG_LOOPS_H

#include "cfg/Cfg.h"
#include "cfg/Dominators.h"

#include <unordered_set>

namespace vsc {

struct Loop {
  BasicBlock *Header = nullptr;
  /// Blocks of the loop; Blocks[0] is the header, the rest follow layout
  /// order.
  std::vector<BasicBlock *> Blocks;
  std::unordered_set<const BasicBlock *> BlockSet;
  /// In-loop sources of back edges to the header.
  std::vector<BasicBlock *> Latches;
  /// Edges from an in-loop block to an out-of-loop block.
  std::vector<CfgEdge> Exits;
  Loop *Parent = nullptr;
  std::vector<Loop *> Children;
  unsigned Depth = 1;

  bool contains(const BasicBlock *BB) const { return BlockSet.count(BB); }
  bool isInnermost() const { return Children.empty(); }
};

class LoopInfo {
public:
  LoopInfo(const Cfg &G, const Dominators &Dom);

  const std::vector<std::unique_ptr<Loop>> &loops() const { return Loops; }

  /// Innermost enclosing loop of \p BB, or null.
  Loop *loopFor(const BasicBlock *BB) const {
    auto It = BlockLoop.find(BB);
    return It == BlockLoop.end() ? nullptr : It->second;
  }

  /// All loops with no children, outermost-first layout order.
  std::vector<Loop *> innermostLoops() const;

  /// Loops with no parent.
  std::vector<Loop *> topLevelLoops() const;

private:
  std::vector<std::unique_ptr<Loop>> Loops;
  std::unordered_map<const BasicBlock *, Loop *> BlockLoop;
};

} // namespace vsc

#endif // VSC_CFG_LOOPS_H
