//===- cfg/Dominators.h - Dominator tree ----------------------*- C++ -*-===//
///
/// \file
/// Immediate-dominator computation using the Cooper–Harvey–Kennedy
/// iterative algorithm over the reverse postorder. Also provides
/// post-dominators (computed on the reversed graph with a virtual exit).
///
//===----------------------------------------------------------------------===//

#ifndef VSC_CFG_DOMINATORS_H
#define VSC_CFG_DOMINATORS_H

#include "cfg/Cfg.h"

namespace vsc {

class Dominators {
public:
  /// Computes dominators (\p Post = false) or post-dominators (true).
  explicit Dominators(const Cfg &G, bool Post = false);

  /// Immediate dominator of \p BB; null for the entry (or, for
  /// post-dominators, for blocks whose only "successor" is the virtual
  /// exit) and for unreachable blocks.
  BasicBlock *idom(const BasicBlock *BB) const {
    auto It = Idom.find(BB);
    return It == Idom.end() ? nullptr : It->second;
  }

  /// \returns true if \p A dominates \p B (reflexive).
  bool dominates(const BasicBlock *A, const BasicBlock *B) const;

private:
  std::unordered_map<const BasicBlock *, BasicBlock *> Idom;
  std::unordered_map<const BasicBlock *, int> Order;
};

} // namespace vsc

#endif // VSC_CFG_DOMINATORS_H
