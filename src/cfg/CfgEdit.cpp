//===- cfg/CfgEdit.cpp - CFG surgery utilities -----------------------------===//

#include "cfg/CfgEdit.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

using namespace vsc;

/// Appends "B Target" to \p BB.
static void appendBranch(Function &F, BasicBlock *BB,
                         const std::string &Target) {
  Instr I;
  I.Op = Opcode::B;
  I.Target = Target;
  F.assignId(I);
  BB->instrs().push_back(std::move(I));
}

BasicBlock *vsc::splitEdge(Function &F, const CfgEdge &E) {
  if (!E.IsTaken) {
    // Fallthrough edge: place the new block between the two blocks.
    size_t FromIdx = F.indexOf(E.From);
    assert(FromIdx + 1 < F.blocks().size() &&
           F.blocks()[FromIdx + 1].get() == E.To &&
           "stale fallthrough edge");
    return F.insertBlock(FromIdx + 1, "split");
  }
  // Taken edge: append a trampoline and retarget the branch.
  BasicBlock *S = F.insertBlock(F.blocks().size(), "split");
  appendBranch(F, S, E.To->label());
  assert(E.TermIdx >= 0 &&
         static_cast<size_t>(E.TermIdx) < E.From->size() &&
         E.From->instrs()[E.TermIdx].Target == E.To->label() &&
         "stale taken edge");
  E.From->instrs()[E.TermIdx].Target = S->label();
  return S;
}

BasicBlock *vsc::ensurePreheader(Function &F, const Cfg &G, Loop &L) {
  BasicBlock *Header = L.Header;
  // An existing preheader?
  BasicBlock *OutsidePred = nullptr;
  unsigned NumOutside = 0;
  for (BasicBlock *P : G.preds(Header)) {
    if (L.contains(P))
      continue;
    ++NumOutside;
    OutsidePred = P;
  }
  if (NumOutside == 1 && G.succs(OutsidePred).size() == 1 &&
      OutsidePred != F.entry())
    return OutsidePred;

  size_t HeaderIdx = F.indexOf(Header);
  // If the layout-previous block is an in-loop fallthrough latch, make its
  // back edge explicit so the new preheader does not intercept it.
  if (HeaderIdx > 0) {
    BasicBlock *Prev = F.blocks()[HeaderIdx - 1].get();
    if (L.contains(Prev) && Prev->canFallThrough())
      appendBranch(F, Prev, Header->label());
  }
  BasicBlock *PH = F.insertBlock(HeaderIdx, "preheader");
  // Retarget every outside-loop branch aimed at the header.
  for (auto &BBPtr : F.blocks()) {
    BasicBlock *BB = BBPtr.get();
    if (BB == PH || L.contains(BB))
      continue;
    for (size_t II = BB->firstTerminatorIdx(); II != BB->size(); ++II) {
      Instr &I = BB->instrs()[II];
      if (I.isBranch() && I.Target == Header->label())
        I.Target = PH->label();
    }
  }
  return PH; // falls through into the header
}

void vsc::layoutBlocks(Function &F, const std::vector<BasicBlock *> &Order) {
  // Record the current fallthrough target of every block.
  std::unordered_map<BasicBlock *, BasicBlock *> FallTarget;
  for (size_t I = 0, E = F.blocks().size(); I != E; ++I) {
    BasicBlock *BB = F.blocks()[I].get();
    if (BB->canFallThrough() && I + 1 < E)
      FallTarget[BB] = F.blocks()[I + 1].get();
  }

  // Build the permutation: Order first, then leftover blocks.
  std::unordered_set<BasicBlock *> InOrder(Order.begin(), Order.end());
  std::vector<std::unique_ptr<BasicBlock>> NewBlocks;
  NewBlocks.reserve(F.blocks().size());
  auto Steal = [&](BasicBlock *Want) {
    for (auto &Slot : F.blocks())
      if (Slot.get() == Want) {
        NewBlocks.push_back(std::move(Slot));
        return;
      }
    assert(false && "ordered block not in function");
  };
  for (BasicBlock *BB : Order)
    Steal(BB);
  for (auto &Slot : F.blocks())
    if (Slot && !InOrder.count(Slot.get()))
      NewBlocks.push_back(std::move(Slot));
  F.blocks() = std::move(NewBlocks);
  assert(!Order.empty() && F.entry() == Order.front() &&
         "entry must stay first");

  // Restore semantics: insert explicit branches where fallthrough broke.
  for (size_t I = 0, E = F.blocks().size(); I != E; ++I) {
    BasicBlock *BB = F.blocks()[I].get();
    auto It = FallTarget.find(BB);
    if (It == FallTarget.end())
      continue;
    BasicBlock *Next = I + 1 < E ? F.blocks()[I + 1].get() : nullptr;
    if (Next != It->second)
      appendBranch(F, BB, It->second->label());
  }
  F.noteCfgEdit();
}

size_t vsc::removeUnreachableBlocks(Function &F) {
  Cfg G(F);
  size_t Removed = 0;
  for (size_t I = F.blocks().size(); I-- > 0;) {
    if (!G.isReachable(F.blocks()[I].get())) {
      F.eraseBlock(I);
      ++Removed;
    }
  }
  return Removed;
}

/// One straightening round; \returns true if something changed.
static bool straightenOnce(Function &F) {
  // (a) Delete "B next" and conditional branches to their own fallthrough.
  for (size_t BI = 0, BE = F.blocks().size(); BI != BE; ++BI) {
    BasicBlock *BB = F.blocks()[BI].get();
    BasicBlock *Next = BI + 1 < BE ? F.blocks()[BI + 1].get() : nullptr;
    if (!BB->empty() && BB->instrs().back().Op == Opcode::B && Next &&
        BB->instrs().back().Target == Next->label()) {
      BB->instrs().pop_back();
      return true;
    }
    // [BT X, B X] — the conditional branch is pointless.
    size_t N = BB->size();
    if (N >= 2 && BB->instrs()[N - 1].Op == Opcode::B &&
        BB->instrs()[N - 2].isCondBranch() &&
        BB->instrs()[N - 2].Op != Opcode::BCT &&
        BB->instrs()[N - 2].Target == BB->instrs()[N - 1].Target) {
      BB->instrs().erase(BB->instrs().begin() + static_cast<long>(N) - 2);
      return true;
    }
    // [BT next] — conditional branch to the fallthrough target.
    if (N >= 1 && BB->instrs().back().isCondBranch() &&
        BB->instrs().back().Op != Opcode::BCT && Next &&
        BB->instrs().back().Target == Next->label()) {
      BB->instrs().pop_back();
      return true;
    }
    // [BT X, B Y] where X is the layout-next block: invert the condition
    // so the hot path falls through ("branch reversal" in its classical
    // straightening form).
    if (N >= 2 && BB->instrs()[N - 1].Op == Opcode::B &&
        (BB->instrs()[N - 2].Op == Opcode::BT ||
         BB->instrs()[N - 2].Op == Opcode::BF) &&
        Next && BB->instrs()[N - 2].Target == Next->label()) {
      Instr &Cond = BB->instrs()[N - 2];
      Cond.Op = Cond.Op == Opcode::BT ? Opcode::BF : Opcode::BT;
      Cond.Target = BB->instrs()[N - 1].Target;
      BB->instrs().pop_back();
      return true;
    }
  }

  // (b) Thread branches through empty forwarding blocks ("B T" only).
  for (auto &BBPtr : F.blocks()) {
    BasicBlock *E = BBPtr.get();
    if (E == F.entry() || E->size() != 1 ||
        E->instrs()[0].Op != Opcode::B)
      continue;
    const std::string &T = E->instrs()[0].Target;
    if (T == E->label())
      continue; // self loop
    bool Changed = false;
    for (auto &OtherPtr : F.blocks()) {
      BasicBlock *O = OtherPtr.get();
      if (O == E)
        continue;
      for (size_t II = O->firstTerminatorIdx(); II != O->size(); ++II) {
        Instr &I = O->instrs()[II];
        if (I.isBranch() && I.Target == E->label()) {
          I.Target = T;
          Changed = true;
        }
      }
    }
    if (Changed)
      return true;
  }

  // (c) Merge single-pred/single-succ straight-line pairs.
  {
    Cfg G(F);
    for (auto &BBPtr : F.blocks()) {
      BasicBlock *A = BBPtr.get();
      if (!G.isReachable(A))
        continue;
      const auto &Succs = G.succs(A);
      if (Succs.size() != 1)
        continue;
      BasicBlock *S = Succs[0].To;
      if (S == A || S == F.entry() || G.preds(S).size() != 1)
        continue;
      // Drop A's trailing unconditional branch, splice S in, remove S. If
      // S could fall through, that successor is positional: make it
      // explicit first so the splice cannot change it.
      if (S->canFallThrough()) {
        BasicBlock *SFall = G.fallthroughOf(S);
        if (!SFall)
          continue; // S at function end relies on verifier-rejected shape
        appendBranch(F, S, SFall->label());
      }
      if (!A->empty() && A->instrs().back().Op == Opcode::B)
        A->instrs().pop_back();
      else
        assert(G.fallthroughOf(A) == S && "unexpected merge shape");
      for (Instr &I : S->instrs())
        A->instrs().push_back(std::move(I));
      F.eraseBlock(F.indexOf(S));
      return true;
    }
  }

  return false;
}

bool vsc::straighten(Function &F) {
  bool Any = false;
  while (straightenOnce(F)) {
    Any = true;
    // Rounds (a)/(b) delete or retarget branches in place, which no
    // block-list mutator sees — record the structural edit explicitly.
    F.noteCfgEdit();
    removeUnreachableBlocks(F);
  }
  removeUnreachableBlocks(F);
  return Any;
}
