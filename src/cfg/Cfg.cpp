//===- cfg/Cfg.cpp - Control-flow graph view -------------------------------===//

#include "cfg/Cfg.h"

#include <cassert>

using namespace vsc;

BasicBlock *Cfg::fallthroughOf(const BasicBlock *BB) const {
  if (!BB->canFallThrough())
    return nullptr;
  size_t Idx = F.indexOf(BB);
  if (Idx + 1 >= F.blocks().size())
    return nullptr;
  return F.blocks()[Idx + 1].get();
}

Cfg::Cfg(Function &F) : F(F) {
  // Successors.
  for (size_t BI = 0, BE = F.blocks().size(); BI != BE; ++BI) {
    BasicBlock *BB = F.blocks()[BI].get();
    std::vector<CfgEdge> &Succs = SuccMap[BB];
    PredMap[BB]; // ensure entry exists

    // Taken edges from the terminator suffix, in instruction order.
    for (size_t II = BB->firstTerminatorIdx(); II != BB->size(); ++II) {
      const Instr &I = BB->instrs()[II];
      if (I.isBranch()) {
        BasicBlock *To = F.findBlock(I.Target);
        assert(To && "unresolved branch target (run the verifier)");
        Succs.push_back(CfgEdge{BB, To, true, static_cast<int>(II)});
      }
    }
    // Fallthrough edge.
    if (BB->canFallThrough() && BI + 1 < BE)
      Succs.push_back(CfgEdge{BB, F.blocks()[BI + 1].get(), false, -1});
  }

  // Predecessors and the global edge list, in deterministic layout order.
  for (auto &BBPtr : F.blocks()) {
    BasicBlock *BB = BBPtr.get();
    for (const CfgEdge &E : SuccMap[BB]) {
      Edges.push_back(E);
      PredMap[E.To].push_back(BB);
    }
  }

  // Reverse postorder via iterative DFS from the entry.
  if (F.blocks().empty())
    return;
  std::unordered_map<const BasicBlock *, unsigned> State; // 0 new, 1 open
  std::vector<std::pair<BasicBlock *, size_t>> Stack;
  std::vector<BasicBlock *> PostOrder;
  Stack.push_back({F.entry(), 0});
  State[F.entry()] = 1;
  while (!Stack.empty()) {
    auto &[BB, NextSucc] = Stack.back();
    const std::vector<CfgEdge> &Succs = SuccMap[BB];
    if (NextSucc < Succs.size()) {
      BasicBlock *To = Succs[NextSucc++].To;
      if (!State.count(To)) {
        State[To] = 1;
        Stack.push_back({To, 0});
      }
      continue;
    }
    PostOrder.push_back(BB);
    Stack.pop_back();
  }
  Rpo.assign(PostOrder.rbegin(), PostOrder.rend());
  for (size_t I = 0; I != Rpo.size(); ++I)
    RpoIndex[Rpo[I]] = static_cast<int>(I);
}
