//===- cfg/Biconnected.h - Biconnected components -------------*- C++ -*-===//
///
/// \file
/// Tarjan's biconnected-components algorithm on the undirected version of
/// the control-flow graph, plus the component tree the paper's prolog
/// tailoring builds ("identify bi-connected components in the undirected
/// version of the flow graph using Tarjan's algorithm ... Create a tree
/// from these bi-connected components where the root is the component
/// containing the special procedure start node"). An outermost
/// if-then-else-endif forms one component; sequential code forms a chain
/// of edge-components joined at articulation blocks.
///
/// The production prolog-tailoring pass uses dominator-closure placement
/// (see vliw/PrologTailor.h for the rationale); this analysis implements
/// the paper's stage-1 machinery faithfully and is tested against the
/// paper's example shapes.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_CFG_BICONNECTED_H
#define VSC_CFG_BICONNECTED_H

#include "cfg/Cfg.h"

#include <unordered_set>

namespace vsc {

class BiconnectedComponents {
public:
  struct Component {
    /// Blocks touched by this component's edges (articulation blocks
    /// appear in several components).
    std::vector<BasicBlock *> Blocks;
    /// Parent component in the paper's tree (-1 for the root).
    int Parent = -1;
    std::vector<int> Children;
    /// The articulation block shared with the parent (null for the root).
    BasicBlock *SharedWithParent = nullptr;
  };

  explicit BiconnectedComponents(const Cfg &G);

  const std::vector<Component> &components() const { return Comps; }

  /// Blocks whose removal disconnects the undirected CFG.
  const std::vector<BasicBlock *> &articulationPoints() const {
    return ArtPoints;
  }

  bool isArticulationPoint(const BasicBlock *BB) const {
    return ArtSet.count(BB) != 0;
  }

  /// Index of the root component (contains the entry), or -1 if the
  /// function has a single block and no edges.
  int rootComponent() const { return Root; }

  /// Components containing \p BB (one for most blocks, several for
  /// articulation points).
  std::vector<int> componentsOf(const BasicBlock *BB) const;

private:
  std::vector<Component> Comps;
  std::vector<BasicBlock *> ArtPoints;
  std::unordered_set<const BasicBlock *> ArtSet;
  int Root = -1;
};

} // namespace vsc

#endif // VSC_CFG_BICONNECTED_H
