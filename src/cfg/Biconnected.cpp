//===- cfg/Biconnected.cpp - Biconnected components ---------------------------===//

#include "cfg/Biconnected.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

using namespace vsc;

namespace {

/// Undirected adjacency over reachable blocks (successors + predecessors,
/// deduplicated, self-loops dropped — a self back edge is its own trivial
/// component and irrelevant to articulation structure).
struct UndirectedGraph {
  std::vector<BasicBlock *> Nodes;
  std::unordered_map<const BasicBlock *, int> Index;
  std::vector<std::vector<int>> Adj;

  explicit UndirectedGraph(const Cfg &G) {
    for (BasicBlock *BB : G.rpo()) {
      Index[BB] = static_cast<int>(Nodes.size());
      Nodes.push_back(BB);
    }
    Adj.assign(Nodes.size(), {});
    auto AddEdge = [&](int A, int B) {
      if (A == B)
        return;
      if (std::find(Adj[A].begin(), Adj[A].end(), B) == Adj[A].end()) {
        Adj[A].push_back(B);
        Adj[B].push_back(A);
      }
    };
    for (BasicBlock *BB : G.rpo())
      for (const CfgEdge &E : G.succs(BB))
        if (Index.count(E.To))
          AddEdge(Index[BB], Index[E.To]);
  }
};

} // namespace

BiconnectedComponents::BiconnectedComponents(const Cfg &G) {
  UndirectedGraph U(G);
  size_t N = U.Nodes.size();
  if (N == 0)
    return;

  // Iterative Tarjan with an explicit edge stack.
  std::vector<int> Disc(N, -1), Low(N, 0), Parent(N, -1), ChildCount(N, 0);
  std::vector<std::pair<int, int>> EdgeStack;
  std::vector<std::vector<int>> CompBlocks; // node indices per component
  int Time = 0;

  struct Frame {
    int Node;
    size_t NextAdj;
  };
  std::vector<Frame> Stack;

  auto PopComponent = [&](int A, int B) {
    std::vector<int> NodesInComp;
    auto Note = [&](int X) {
      if (std::find(NodesInComp.begin(), NodesInComp.end(), X) ==
          NodesInComp.end())
        NodesInComp.push_back(X);
    };
    while (!EdgeStack.empty()) {
      auto [X, Y] = EdgeStack.back();
      EdgeStack.pop_back();
      Note(X);
      Note(Y);
      if ((X == A && Y == B) || (X == B && Y == A))
        break;
    }
    CompBlocks.push_back(std::move(NodesInComp));
  };

  for (size_t Start = 0; Start != N; ++Start) {
    if (Disc[Start] >= 0)
      continue;
    Stack.push_back({static_cast<int>(Start), 0});
    Disc[Start] = Low[Start] = Time++;
    while (!Stack.empty()) {
      Frame &F = Stack.back();
      int V = F.Node;
      if (F.NextAdj < U.Adj[V].size()) {
        int W = U.Adj[V][F.NextAdj++];
        if (Disc[W] < 0) {
          EdgeStack.push_back({V, W});
          Parent[W] = V;
          ++ChildCount[V];
          Disc[W] = Low[W] = Time++;
          Stack.push_back({W, 0});
        } else if (W != Parent[V] && Disc[W] < Disc[V]) {
          EdgeStack.push_back({V, W});
          Low[V] = std::min(Low[V], Disc[W]);
        }
        continue;
      }
      Stack.pop_back();
      int P = Parent[V];
      if (P >= 0) {
        Low[P] = std::min(Low[P], Low[V]);
        if (Low[V] >= Disc[P]) {
          // P is an articulation point (or the root); pop the component.
          PopComponent(P, V);
          bool IsRoot = Parent[P] < 0;
          if ((!IsRoot || ChildCount[P] > 1) && !ArtSet.count(U.Nodes[P])) {
            ArtSet.insert(U.Nodes[P]);
            ArtPoints.push_back(U.Nodes[P]);
          }
        }
      }
    }
  }

  // Materialise components; an isolated single block (function with one
  // block) gets its own component so the tree is never empty.
  for (const auto &NodeIdxs : CompBlocks) {
    Component C;
    for (int I : NodeIdxs)
      C.Blocks.push_back(U.Nodes[I]);
    Comps.push_back(std::move(C));
  }
  if (Comps.empty() && !U.Nodes.empty()) {
    Component C;
    C.Blocks.push_back(U.Nodes[0]);
    Comps.push_back(std::move(C));
  }

  // The paper's tree: root is the component containing the entry; children
  // are components sharing an articulation block with a tree node.
  const BasicBlock *Entry = G.function().entry();
  for (size_t I = 0; I != Comps.size(); ++I)
    for (BasicBlock *BB : Comps[I].Blocks)
      if (BB == Entry && Root < 0)
        Root = static_cast<int>(I);
  if (Root < 0)
    Root = 0;

  std::vector<bool> Placed(Comps.size(), false);
  Placed[static_cast<size_t>(Root)] = true;
  std::vector<int> Work{Root};
  while (!Work.empty()) {
    int Cur = Work.back();
    Work.pop_back();
    for (size_t I = 0; I != Comps.size(); ++I) {
      if (Placed[I])
        continue;
      BasicBlock *Shared = nullptr;
      for (BasicBlock *A : Comps[Cur].Blocks)
        for (BasicBlock *B : Comps[I].Blocks)
          if (A == B)
            Shared = A;
      if (!Shared)
        continue;
      Comps[I].Parent = Cur;
      Comps[I].SharedWithParent = Shared;
      Comps[Cur].Children.push_back(static_cast<int>(I));
      Placed[I] = true;
      Work.push_back(static_cast<int>(I));
    }
  }
}

std::vector<int>
BiconnectedComponents::componentsOf(const BasicBlock *BB) const {
  std::vector<int> Out;
  for (size_t I = 0; I != Comps.size(); ++I)
    for (BasicBlock *B : Comps[I].Blocks)
      if (B == BB) {
        Out.push_back(static_cast<int>(I));
        break;
      }
  return Out;
}
