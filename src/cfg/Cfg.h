//===- cfg/Cfg.h - Control-flow graph view --------------------*- C++ -*-===//
///
/// \file
/// A lightweight control-flow-graph view over a Function. Successors are
/// derived from each block's terminator suffix and the layout order
/// (fallthrough). The view is computed once at construction; passes that
/// mutate the function rebuild it (functions in this project are small
/// enough that recomputation is the simpler, safer protocol).
///
//===----------------------------------------------------------------------===//

#ifndef VSC_CFG_CFG_H
#define VSC_CFG_CFG_H

#include "ir/Function.h"

#include <unordered_map>
#include <vector>

namespace vsc {

/// One control-flow edge. \c IsTaken distinguishes the branch-taken edge
/// from the fallthrough edge (a block can have both to the same target).
/// For taken edges \c TermIdx is the index (within From's instructions) of
/// the branch that creates the edge, so edge-splitting can retarget exactly
/// the right branch; it is -1 for fallthrough edges.
struct CfgEdge {
  BasicBlock *From = nullptr;
  BasicBlock *To = nullptr;
  bool IsTaken = false;
  int TermIdx = -1;

  bool operator==(const CfgEdge &RHS) const {
    return From == RHS.From && To == RHS.To && IsTaken == RHS.IsTaken &&
           TermIdx == RHS.TermIdx;
  }
};

class Cfg {
public:
  explicit Cfg(Function &F);

  Function &function() const { return F; }

  const std::vector<CfgEdge> &succs(const BasicBlock *BB) const {
    return SuccMap.at(BB);
  }
  const std::vector<BasicBlock *> &preds(const BasicBlock *BB) const {
    return PredMap.at(BB);
  }
  /// Every edge, ordered by source layout index (taken edges first).
  const std::vector<CfgEdge> &edges() const { return Edges; }

  /// Blocks in reverse postorder from the entry (unreachable blocks are
  /// excluded).
  const std::vector<BasicBlock *> &rpo() const { return Rpo; }

  /// Position of \p BB in the reverse postorder, or -1 if unreachable.
  int rpoIndex(const BasicBlock *BB) const {
    auto It = RpoIndex.find(BB);
    return It == RpoIndex.end() ? -1 : It->second;
  }

  bool isReachable(const BasicBlock *BB) const {
    return RpoIndex.count(BB) != 0;
  }

  /// \returns the fallthrough successor of \p BB (the next block in layout
  /// order) when execution can fall through, else null.
  BasicBlock *fallthroughOf(const BasicBlock *BB) const;

private:
  Function &F;
  std::unordered_map<const BasicBlock *, std::vector<CfgEdge>> SuccMap;
  std::unordered_map<const BasicBlock *, std::vector<BasicBlock *>> PredMap;
  std::vector<CfgEdge> Edges;
  std::vector<BasicBlock *> Rpo;
  std::unordered_map<const BasicBlock *, int> RpoIndex;
};

} // namespace vsc

#endif // VSC_CFG_CFG_H
