//===- cfg/Loops.cpp - Natural loop detection ------------------------------===//

#include "cfg/Loops.h"

#include <algorithm>
#include <cassert>

using namespace vsc;

LoopInfo::LoopInfo(const Cfg &G, const Dominators &Dom) {
  // Find back edges and group them by header (one Loop per header, merging
  // multiple latches, as usual for natural loops).
  std::unordered_map<BasicBlock *, Loop *> HeaderLoop;
  for (BasicBlock *BB : G.rpo()) {
    for (const CfgEdge &E : G.succs(BB)) {
      if (!Dom.dominates(E.To, BB))
        continue;
      Loop *&L = HeaderLoop[E.To];
      if (!L) {
        Loops.push_back(std::make_unique<Loop>());
        L = Loops.back().get();
        L->Header = E.To;
      }
      L->Latches.push_back(BB);
    }
  }

  // Flood backwards from each latch to collect loop bodies.
  for (auto &LPtr : Loops) {
    Loop &L = *LPtr;
    L.BlockSet.insert(L.Header);
    std::vector<BasicBlock *> Work(L.Latches.begin(), L.Latches.end());
    while (!Work.empty()) {
      BasicBlock *BB = Work.back();
      Work.pop_back();
      if (!L.BlockSet.insert(BB).second)
        continue;
      for (BasicBlock *P : G.preds(BB))
        if (G.isReachable(P))
          Work.push_back(P);
    }
    // Blocks in layout order, header first.
    L.Blocks.push_back(L.Header);
    for (auto &BBPtr : G.function().blocks()) {
      BasicBlock *BB = BBPtr.get();
      if (BB != L.Header && L.contains(BB))
        L.Blocks.push_back(BB);
    }
    // Exits.
    for (BasicBlock *BB : L.Blocks)
      for (const CfgEdge &E : G.succs(BB))
        if (!L.contains(E.To))
          L.Exits.push_back(E);
  }

  // Nesting: loop A is a child of the smallest loop B != A containing A's
  // header.
  for (auto &APtr : Loops) {
    Loop *Best = nullptr;
    for (auto &BPtr : Loops) {
      if (APtr == BPtr)
        continue;
      if (!BPtr->contains(APtr->Header))
        continue;
      if (!Best || BPtr->Blocks.size() < Best->Blocks.size())
        Best = BPtr.get();
    }
    if (Best) {
      APtr->Parent = Best;
      Best->Children.push_back(APtr.get());
    }
  }
  for (auto &LPtr : Loops) {
    unsigned D = 1;
    for (Loop *P = LPtr->Parent; P; P = P->Parent)
      ++D;
    LPtr->Depth = D;
  }

  // Innermost-loop map per block.
  for (auto &LPtr : Loops) {
    for (BasicBlock *BB : LPtr->Blocks) {
      Loop *&Cur = BlockLoop[BB];
      if (!Cur || LPtr->Depth > Cur->Depth)
        Cur = LPtr.get();
    }
  }
}

std::vector<Loop *> LoopInfo::innermostLoops() const {
  std::vector<Loop *> Out;
  for (const auto &L : Loops)
    if (L->isInnermost())
      Out.push_back(L.get());
  return Out;
}

std::vector<Loop *> LoopInfo::topLevelLoops() const {
  std::vector<Loop *> Out;
  for (const auto &L : Loops)
    if (!L->Parent)
      Out.push_back(L.get());
  return Out;
}
