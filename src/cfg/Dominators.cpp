//===- cfg/Dominators.cpp - Dominator tree ---------------------------------===//

#include "cfg/Dominators.h"

#include <algorithm>
#include <cassert>

using namespace vsc;

namespace {

/// A graph direction adaptor: forward for dominators, backward (with every
/// exit block rooted at a virtual exit) for post-dominators.
struct DirectedView {
  const Cfg &G;
  bool Post;

  std::vector<BasicBlock *> roots() const {
    if (!Post)
      return {G.function().entry()};
    std::vector<BasicBlock *> Exits;
    for (BasicBlock *BB : G.rpo())
      if (G.succs(BB).empty())
        Exits.push_back(BB);
    return Exits;
  }

  std::vector<BasicBlock *> next(BasicBlock *BB) const {
    std::vector<BasicBlock *> Out;
    if (!Post) {
      for (const CfgEdge &E : G.succs(BB))
        Out.push_back(E.To);
    } else {
      for (BasicBlock *P : G.preds(BB))
        Out.push_back(P);
    }
    return Out;
  }

  std::vector<BasicBlock *> prev(BasicBlock *BB) const {
    std::vector<BasicBlock *> Out;
    if (!Post) {
      for (BasicBlock *P : G.preds(BB))
        Out.push_back(P);
    } else {
      for (const CfgEdge &E : G.succs(BB))
        Out.push_back(E.To);
    }
    return Out;
  }
};

} // namespace

Dominators::Dominators(const Cfg &G, bool Post) {
  DirectedView V{G, Post};
  std::vector<BasicBlock *> Roots = V.roots();
  if (Roots.empty())
    return;

  // Reverse postorder over the directed view.
  std::vector<BasicBlock *> Rpo;
  {
    std::unordered_map<const BasicBlock *, bool> Seen;
    std::vector<std::pair<BasicBlock *, size_t>> Stack;
    std::vector<BasicBlock *> Posts;
    for (BasicBlock *R : Roots) {
      if (Seen[R])
        continue;
      Seen[R] = true;
      Stack.push_back({R, 0});
      while (!Stack.empty()) {
        auto &[BB, NextIdx] = Stack.back();
        std::vector<BasicBlock *> Nexts = V.next(BB);
        if (NextIdx < Nexts.size()) {
          BasicBlock *To = Nexts[NextIdx++];
          if (!Seen[To]) {
            Seen[To] = true;
            Stack.push_back({To, 0});
          }
          continue;
        }
        Posts.push_back(BB);
        Stack.pop_back();
      }
    }
    Rpo.assign(Posts.rbegin(), Posts.rend());
  }
  for (size_t I = 0; I != Rpo.size(); ++I)
    Order[Rpo[I]] = static_cast<int>(I);

  // Cooper–Harvey–Kennedy. Multiple roots (post-dominators with several
  // exits) are modelled by treating each root as its own idom.
  auto Intersect = [&](BasicBlock *A, BasicBlock *B) {
    while (A != B) {
      while (Order.at(A) > Order.at(B)) {
        BasicBlock *N = Idom.at(A);
        if (N == A)
          return B; // hit a root; roots join at the virtual super-root
        A = N;
      }
      while (Order.at(B) > Order.at(A)) {
        BasicBlock *N = Idom.at(B);
        if (N == B)
          return A;
        B = N;
      }
    }
    return A;
  };

  for (BasicBlock *R : Roots)
    Idom[R] = R; // self-idom marks a root during iteration

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BasicBlock *BB : Rpo) {
      if (Idom.count(BB) && Idom[BB] == BB)
        continue; // root
      BasicBlock *NewIdom = nullptr;
      for (BasicBlock *P : V.prev(BB)) {
        if (!Idom.count(P))
          continue; // not yet processed / unreachable
        NewIdom = NewIdom ? Intersect(NewIdom, P) : P;
      }
      if (!NewIdom)
        continue;
      auto It = Idom.find(BB);
      if (It == Idom.end() || It->second != NewIdom) {
        Idom[BB] = NewIdom;
        Changed = true;
      }
    }
  }

  // Normalise: a root's idom is null (self-loops in the map removed).
  for (BasicBlock *R : Roots)
    Idom[R] = nullptr;
}

bool Dominators::dominates(const BasicBlock *A, const BasicBlock *B) const {
  const BasicBlock *Cur = B;
  while (Cur) {
    if (Cur == A)
      return true;
    auto It = Idom.find(Cur);
    if (It == Idom.end())
      return false;
    Cur = It->second;
  }
  return false;
}
