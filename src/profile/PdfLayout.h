//===- profile/PdfLayout.h - PDF block reordering & reversal --*- C++ -*-===//
///
/// \file
/// The paper's profile-directed layout applications:
///
///  * Basic block re-ordering: "just before final code generation, the
///    basic blocks are physically reordered following a depth-first
///    enumeration of the flow graph ... the flow graph edges that are
///    executed most frequently are followed first", so the hot path
///    becomes a straight line of fallthroughs; standard straightening runs
///    afterwards.
///  * Branch reversal: conditional branches still taken most of the time
///    are reversed (BT <-> BF with targets swapped through a new
///    unconditional branch), and basic block expansion then copies the old
///    target's code over the new unconditional branch.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_PROFILE_PDFLAYOUT_H
#define VSC_PROFILE_PDFLAYOUT_H

#include "machine/MachineModel.h"
#include "profile/ProfileData.h"

namespace vsc {

/// Reorders blocks most-frequent-successor-first. \returns true on change.
bool pdfReorderBlocks(Function &F, const ProfileData &P);

/// Reverses conditional branches taken with probability > \p Threshold and
/// applies basic block expansion to the introduced unconditional branches.
bool pdfReverseBranches(Function &F, const ProfileData &P,
                        const MachineModel &MM, double Threshold = 0.6);

/// Profile-weighted cost model for layout decisions: per-block scheduled
/// issue cycles times execution count, plus the taken-branch redirect for
/// every profiled edge that does not fall through in the current layout.
double estimateProfiledCost(Function &F, const ProfileData &P,
                            const MachineModel &MM);

/// Runs both layout applications and keeps the result only if the
/// profiled cost model improves. \returns true if kept.
bool pdfLayoutGated(Function &F, const ProfileData &P,
                    const MachineModel &MM);

/// Module-level layout application with a *measured* gate: applies
/// reordering + reversal to every function, re-simulates the training
/// input, and rolls everything back unless cycles improved. Profile-
/// directed feedback with this gate can only help the trained input —
/// the safety the paper's "heretofore considered too risky" framing asks
/// for. With a null \p TrainInput the layout is kept unconditionally.
/// \returns true if the layout was kept.
bool pdfLayoutMeasured(Module &M, const ProfileData &P,
                       const MachineModel &MM,
                       const RunOptions *TrainInput);

/// Battery form of the measured gate: cycles are summed over every
/// training input, each battery simulated through one predecoded SimEngine
/// and fanned out over \p Threads workers (0 defers to VSC_THREADS; the
/// sum is positional, so the decision is identical at every thread
/// count). An empty battery keeps the layout unconditionally; a trapping
/// training run rolls it back.
bool pdfLayoutMeasured(Module &M, const ProfileData &P,
                       const MachineModel &MM,
                       const std::vector<RunOptions> &TrainBattery,
                       unsigned Threads = 0);

} // namespace vsc

#endif // VSC_PROFILE_PDFLAYOUT_H
