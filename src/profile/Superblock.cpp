//===- profile/Superblock.cpp - Trace/superblock formation --------------------===//

#include "profile/Superblock.h"

#include "cfg/CfgEdit.h"
#include "cfg/Dominators.h"
#include "cfg/Loops.h"

#include <algorithm>
#include <cassert>

using namespace vsc;

namespace {

/// Grows one trace from \p Seed along most-probable successors.
std::vector<BasicBlock *> growTrace(Function &F, const Cfg &G,
                                    const LoopInfo &LI, const ProfileData &P,
                                    BasicBlock *Seed,
                                    const SuperblockOptions &Opts,
                                    const std::unordered_set<const BasicBlock *>
                                        &Taken) {
  std::vector<BasicBlock *> Trace{Seed};
  std::unordered_set<const BasicBlock *> InTrace{Seed};
  BasicBlock *Cur = Seed;
  while (Trace.size() < Opts.MaxTraceBlocks) {
    const CfgEdge *Best = nullptr;
    double BestProb = 0;
    for (const CfgEdge &E : G.succs(Cur)) {
      double Prob = P.edgeProbability(F, E);
      if (!Best || Prob > BestProb) {
        Best = &E;
        BestProb = Prob;
      }
    }
    if (!Best || BestProb < Opts.MinEdgeProbability)
      break;
    BasicBlock *Next = Best->To;
    if (InTrace.count(Next) || Taken.count(Next) || Next == F.entry())
      break;
    if (P.block(F, Next) < Opts.HotThreshold)
      break;
    // Stay within one loop level and never duplicate loop headers (the
    // trace would otherwise clone loop-entry structure).
    if (LI.loopFor(Next) != LI.loopFor(Seed))
      break;
    if (LI.loopFor(Next) && LI.loopFor(Next)->Header == Next)
      break;
    Trace.push_back(Next);
    InTrace.insert(Next);
    Cur = Next;
  }
  return Trace;
}

/// Tail-duplicates \p BB for all predecessors except \p OnTracePred.
/// \returns the clone's size, or 0 when no duplication was needed.
size_t tailDuplicate(Function &F, BasicBlock *BB, BasicBlock *OnTracePred) {
  Cfg G(F);
  std::vector<BasicBlock *> OffTrace;
  for (BasicBlock *Q : G.preds(BB))
    if (Q != OnTracePred &&
        std::find(OffTrace.begin(), OffTrace.end(), Q) == OffTrace.end())
      OffTrace.push_back(Q);
  if (OffTrace.empty())
    return 0;

  // Clone at the end of the layout; make the fallthrough explicit first.
  BasicBlock *FallTarget = G.fallthroughOf(BB);
  BasicBlock *Clone = F.insertBlock(F.blocks().size(), BB->label() + ".sb");
  for (const Instr &I : BB->instrs()) {
    Instr C = I;
    F.assignId(C);
    Clone->instrs().push_back(std::move(C));
  }
  if (FallTarget) {
    Instr Br;
    Br.Op = Opcode::B;
    Br.Target = FallTarget->label();
    F.assignId(Br);
    Clone->instrs().push_back(std::move(Br));
  }

  // Redirect every off-trace predecessor to the clone.
  for (BasicBlock *Q : OffTrace) {
    bool Redirected = false;
    for (size_t II = Q->firstTerminatorIdx(); II != Q->size(); ++II) {
      Instr &I = Q->instrs()[II];
      if (I.isBranch() && I.Target == BB->label()) {
        I.Target = Clone->label();
        Redirected = true;
      }
    }
    // A fallthrough predecessor needs an explicit branch to the clone.
    if (!Redirected) {
      assert(Q->canFallThrough() && "predecessor without an edge?");
      Instr Br;
      Br.Op = Opcode::B;
      Br.Target = Clone->label();
      F.assignId(Br);
      Q->instrs().push_back(std::move(Br));
    }
  }
  return Clone->size();
}

} // namespace

unsigned vsc::formSuperblocks(Function &F, const ProfileData &P,
                              const SuperblockOptions &Opts) {
  Cfg G(F);
  Dominators Dom(G);
  LoopInfo LI(G, Dom);

  // Seeds: hottest blocks first, deterministic tie-break by layout.
  std::vector<BasicBlock *> Seeds;
  for (BasicBlock *BB : G.rpo())
    if (P.block(F, BB) >= Opts.HotThreshold)
      Seeds.push_back(BB);
  std::stable_sort(Seeds.begin(), Seeds.end(),
                   [&](BasicBlock *A, BasicBlock *B) {
                     return P.block(F, A) > P.block(F, B);
                   });

  std::unordered_set<const BasicBlock *> Taken;
  size_t Growth = 0;
  unsigned Duplicated = 0;
  for (BasicBlock *Seed : Seeds) {
    if (Taken.count(Seed))
      continue;
    std::vector<BasicBlock *> Trace =
        growTrace(F, G, LI, P, Seed, Opts, Taken);
    if (Trace.size() < 2)
      continue;
    for (BasicBlock *BB : Trace)
      Taken.insert(BB);
    // Duplicate front to back: each duplication retargets all current
    // off-trace predecessors, including clones made for earlier trace
    // blocks.
    for (size_t I = 1; I != Trace.size(); ++I) {
      if (Growth >= Opts.MaxGrowth)
        break;
      size_t Added = tailDuplicate(F, Trace[I], Trace[I - 1]);
      if (Added) {
        Growth += Added;
        ++Duplicated;
      }
    }
    // The CFG changed; later traces recompute predecessor structure
    // through tailDuplicate's fresh Cfg, and growTrace's stale G only
    // guides trace selection (safe: selection is heuristic).
  }
  return Duplicated;
}
