//===- profile/Counters.h - Low-overhead profiling ------------*- C++ -*-===//
///
/// \file
/// The paper's low-overhead profiling-directed-feedback machinery:
///
///  * planCounters — picks a subset of basic blocks to count such that
///    every remaining block and edge count is uniquely determined by flow
///    conservation, using constraint propagation (the paper credits
///    Sussman/Steele-style constraint networks). Preference goes to blocks
///    in shallow loop nests ("counting code placed in less frequently
///    executed locations"). Where no block subset can disambiguate (e.g.
///    parallel edges or crossing diamonds), a dummy block is created on an
///    edge, exactly as the paper describes. The plan is deterministic, so
///    pass 1 (instrument) and pass 2 (read back) modify the flow graph the
///    same way.
///
///  * instrumentModule — inserts real counting code (load counter, add 1,
///    store back, three instructions per block as in the paper) against a
///    per-module "__bbcounts" global. Running speculative load/store
///    motion afterwards register-caches the counters in loops, reducing
///    the overhead to one AI per counted block inside loops — the paper's
///    eqntott example.
///
///  * inferCounts — reconstructs every block and edge count from the
///    counted subset by numeric constraint propagation; the simulator's
///    exact counts serve as ground truth in the tests.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_PROFILE_COUNTERS_H
#define VSC_PROFILE_COUNTERS_H

#include "profile/ProfileData.h"

#include <memory>
#include <string>
#include <vector>

namespace vsc {

struct CounterPlan {
  /// Labels of the blocks that receive counting code, in layout order.
  std::vector<std::string> CountedBlocks;
  /// Dummy blocks created (already inserted into the function).
  unsigned NumDummies = 0;
};

/// Chooses counter sites for \p F (may insert dummy blocks). Deterministic.
CounterPlan planCounters(Function &F);

/// Bookkeeping for reading an instrumented run back.
struct Instrumentation {
  /// Slot i of __bbcounts counts the block with key SlotKeys[i]
  /// ("function:label").
  std::vector<std::string> SlotKeys;
  /// Per-function plans (for the second compile).
  std::unordered_map<std::string, CounterPlan> Plans;
};

/// Plans counters for every function of \p M and inserts counting code
/// plus the "__bbcounts" global. When \p HoistCounters, speculative
/// load/store motion + classical cleanup then shrink in-loop counting to
/// one instruction per block.
Instrumentation instrumentModule(Module &M, bool HoistCounters = true);

/// Extracts the counter values from a KeepMemory run of the instrumented
/// module, keyed like ProfileData::BlockCount.
std::unordered_map<std::string, uint64_t>
readCounters(const RunResult &R, const Instrumentation &Info);

/// Reconstructs all block and edge counts of \p F from the counted subset.
/// \p Counted maps "function:label" to values (as from readCounters).
/// \returns "" on success (and fills \p Out), else a diagnostic naming an
/// undetermined block or edge.
std::string inferCounts(Function &F,
                        const std::unordered_map<std::string, uint64_t>
                            &Counted,
                        ProfileData &Out);

/// End-to-end PDF collection, the paper's two-pass scheme: \p Train (a
/// throwaway copy of the program) is instrumented and simulated on the
/// training input; \p Target (the copy that will be optimized) gets
/// planCounters applied — deterministically identical to pass 1 — and the
/// counter values are read back "at the same place" and expanded into a
/// full profile for Target. \returns the profile; empty on failure.
ProfileData collectProfile(Module &Train, Module &Target,
                           const MachineModel &Machine,
                           const RunOptions &TrainOpts);

/// The cached form of the two-pass scheme: instruments a private clone of
/// the source module ONCE and predecodes it ONCE (SimEngine); every
/// further training input only costs one simulation. This is what the PDF
/// experiments use instead of rebuilding + re-instrumenting the module per
/// training run (the pre-PR-5 shape).
class ProfileCollector {
public:
  /// \p Source is cloned, never modified.
  ProfileCollector(const Module &Source, const MachineModel &Machine,
                   bool HoistCounters = true);

  /// Raw counter values ("func:label" -> count) from one training run.
  std::unordered_map<std::string, uint64_t> counts(const RunOptions &Train);

  /// Counter values summed over a whole training battery, fanned out over
  /// \p Threads workers (0 defers to VSC_THREADS). Summation order is the
  /// battery order, so the result is identical at every thread count.
  std::unordered_map<std::string, uint64_t>
  counts(const std::vector<RunOptions> &Battery, unsigned Threads = 0);

  /// Applies the pass-1-identical planCounters surgery to \p Target and
  /// expands \p Counted into a full profile for it. \returns "" on
  /// success, else the first inference diagnostic.
  static std::string expand(Module &Target,
                            const std::unordered_map<std::string, uint64_t>
                                &Counted,
                            ProfileData &Out);

  /// counts() + expand() over a battery: the full cached two-pass scheme.
  ProfileData profileFor(Module &Target,
                         const std::vector<RunOptions> &Battery,
                         unsigned Threads = 0, std::string *Err = nullptr);

  /// Instrumentation bookkeeping of the cached clone.
  const Instrumentation &instrumentation() const { return Info; }

private:
  std::unique_ptr<Module> Instrumented;
  Instrumentation Info;
  SimEngine Engine;
};

} // namespace vsc

#endif // VSC_PROFILE_COUNTERS_H
