//===- profile/Superblock.h - Trace/superblock formation ------*- C++ -*-===//
///
/// \file
/// Profile-driven superblock formation — the trace-scheduling-derivative
/// baseline the paper positions itself against ("our VLIW scheduling
/// techniques do not depend on branch probabilities to generate efficient
/// code, as opposed to trace scheduling and its derivatives [11,6]").
///
/// A trace is grown from a hot seed block along most-probable successors;
/// every on-trace block with off-trace predecessors is tail-duplicated so
/// the trace becomes a single-predecessor chain. Downstream, the ordinary
/// global scheduler then compacts the hot path without join-point
/// constraints — exactly how IMPACT-style superblock compilers set up
/// their schedulers. Off-trace paths pay the code growth.
///
/// bench_superblock compares this profile-dependent pipeline against the
/// paper's profile-independent one.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_PROFILE_SUPERBLOCK_H
#define VSC_PROFILE_SUPERBLOCK_H

#include "profile/ProfileData.h"

namespace vsc {

struct SuperblockOptions {
  /// Minimum execution count for a block to seed or extend a trace.
  uint64_t HotThreshold = 16;
  /// Keep extending while the followed edge has at least this probability.
  double MinEdgeProbability = 0.6;
  /// Maximum blocks per trace.
  unsigned MaxTraceBlocks = 8;
  /// Total duplicated-instruction budget per function.
  size_t MaxGrowth = 256;
};

/// Forms superblocks in \p F using \p P. \returns number of blocks
/// tail-duplicated.
unsigned formSuperblocks(Function &F, const ProfileData &P,
                         const SuperblockOptions &Opts = {});

} // namespace vsc

#endif // VSC_PROFILE_SUPERBLOCK_H
