//===- profile/Counters.cpp - Low-overhead profiling --------------------------===//

#include "profile/Counters.h"

#include "audit/PassAudit.h" // cloneModule
#include "cfg/CfgEdit.h"
#include "cfg/Dominators.h"
#include "cfg/Loops.h"
#include "opt/Classical.h"
#include "vliw/LimitedCombine.h"
#include "vliw/LoadStoreMotion.h"

#include <algorithm>
#include <cassert>
#include <optional>

using namespace vsc;

namespace {

const char *CounterTable = "__bbcounts";

/// Flow-conservation network: function blocks plus a virtual EXIT node;
/// edges are CFG edges plus block->EXIT for returning blocks and
/// EXIT->entry closing the circulation (so the entry count is constrained
/// by the returns).
struct FlowGraph {
  std::vector<BasicBlock *> Nodes; // index == node id; EXIT last (null)
  struct FEdge {
    int From, To;
    const BasicBlock *SrcFrom = nullptr; ///< CFG source (null for virtual)
    const BasicBlock *SrcTo = nullptr;
  };
  std::vector<FEdge> Edges;
  std::vector<std::vector<int>> In, Out;

  int exitNode() const { return static_cast<int>(Nodes.size()) - 1; }

  explicit FlowGraph(Function &F, const Cfg &G) {
    std::unordered_map<const BasicBlock *, int> Id;
    for (auto &BB : F.blocks()) {
      Id[BB.get()] = static_cast<int>(Nodes.size());
      Nodes.push_back(BB.get());
    }
    Nodes.push_back(nullptr); // EXIT
    In.assign(Nodes.size(), {});
    Out.assign(Nodes.size(), {});
    auto AddEdge = [&](int From, int To, const BasicBlock *SF,
                       const BasicBlock *ST) {
      int E = static_cast<int>(Edges.size());
      Edges.push_back(FEdge{From, To, SF, ST});
      Out[From].push_back(E);
      In[To].push_back(E);
    };
    for (auto &BBPtr : F.blocks()) {
      BasicBlock *BB = BBPtr.get();
      if (!G.isReachable(BB))
        continue;
      const auto &Succs = G.succs(BB);
      if (Succs.empty()) {
        AddEdge(Id[BB], exitNode(), BB, nullptr);
        continue;
      }
      for (const CfgEdge &E : Succs)
        AddEdge(Id[BB], Id[E.To], BB, E.To);
    }
    AddEdge(exitNode(), Id[F.entry()], nullptr, F.entry());
  }
};

/// Generic propagation over the network. \p NodeVal / \p EdgeVal hold
/// std::optional<uint64_t>; knownness-only propagation uses value 1.
/// \returns false on an inconsistency.
bool propagate(const FlowGraph &FG,
               std::vector<std::optional<uint64_t>> &NodeVal,
               std::vector<std::optional<uint64_t>> &EdgeVal) {
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t N = 0; N != FG.Nodes.size(); ++N) {
      for (int Dir = 0; Dir != 2; ++Dir) {
        const std::vector<int> &Side = Dir ? FG.Out[N] : FG.In[N];
        if (Side.empty())
          continue;
        uint64_t Sum = 0;
        int UnknownIdx = -1;
        unsigned NumUnknown = 0;
        for (int E : Side) {
          if (EdgeVal[E]) {
            Sum += *EdgeVal[E];
          } else {
            ++NumUnknown;
            UnknownIdx = E;
          }
        }
        if (NumUnknown == 0) {
          if (!NodeVal[N]) {
            NodeVal[N] = Sum;
            Changed = true;
          } else if (*NodeVal[N] != Sum) {
            return false;
          }
        } else if (NumUnknown == 1 && NodeVal[N]) {
          if (*NodeVal[N] < Sum)
            return false;
          EdgeVal[UnknownIdx] = *NodeVal[N] - Sum;
          Changed = true;
        }
      }
    }
  }
  return true;
}

/// Knownness propagation: seeds the chosen blocks, \returns true when every
/// node and edge becomes determined.
bool fullyDetermined(const FlowGraph &FG,
                     const std::vector<bool> &ChosenNode,
                     std::vector<bool> *NodeKnownOut = nullptr) {
  std::vector<std::optional<uint64_t>> NodeVal(FG.Nodes.size());
  std::vector<std::optional<uint64_t>> EdgeVal(FG.Edges.size());
  for (size_t N = 0; N != FG.Nodes.size(); ++N)
    if (ChosenNode[N])
      NodeVal[N] = 1; // knownness only; values are irrelevant but must be
                      // flow-consistent, so run the unknown-counting rules
                      // manually below instead of numeric subtraction.
  // Boolean variant of propagate(): a value present means "known".
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t N = 0; N != FG.Nodes.size(); ++N) {
      for (int Dir = 0; Dir != 2; ++Dir) {
        const std::vector<int> &Side = Dir ? FG.Out[N] : FG.In[N];
        if (Side.empty())
          continue;
        unsigned NumUnknown = 0;
        int UnknownIdx = -1;
        for (int E : Side)
          if (!EdgeVal[E]) {
            ++NumUnknown;
            UnknownIdx = E;
          }
        if (NumUnknown == 0 && !NodeVal[N]) {
          NodeVal[N] = 1;
          Changed = true;
        } else if (NumUnknown == 1 && NodeVal[N]) {
          EdgeVal[UnknownIdx] = 1;
          Changed = true;
        }
      }
    }
  }
  if (NodeKnownOut) {
    NodeKnownOut->assign(FG.Nodes.size(), false);
    for (size_t N = 0; N != FG.Nodes.size(); ++N)
      (*NodeKnownOut)[N] = NodeVal[N].has_value();
  }
  for (const auto &V : NodeVal)
    if (!V)
      return false;
  for (const auto &V : EdgeVal)
    if (!V)
      return false;
  return true;
}

/// Splits parallel edges (two CFG edges between the same block pair), which
/// no block-count subset can disambiguate.
unsigned splitParallelEdges(Function &F) {
  unsigned Dummies = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    Cfg G(F);
    for (auto &BBPtr : F.blocks()) {
      BasicBlock *BB = BBPtr.get();
      const auto &Succs = G.succs(BB);
      for (size_t I = 0; I + 1 < Succs.size() && !Changed; ++I)
        for (size_t J = I + 1; J < Succs.size(); ++J)
          if (Succs[I].To == Succs[J].To) {
            const CfgEdge &Victim =
                Succs[I].IsTaken ? Succs[I] : Succs[J];
            splitEdge(F, Victim);
            ++Dummies;
            Changed = true;
            break;
          }
      if (Changed)
        break;
    }
  }
  return Dummies;
}

} // namespace

CounterPlan vsc::planCounters(Function &F) {
  CounterPlan Plan;
  Plan.NumDummies = splitParallelEdges(F);

  for (unsigned Round = 0; Round < 32; ++Round) {
    Cfg G(F);
    Dominators Dom(G);
    LoopInfo LI(G, Dom);
    FlowGraph FG(F, G);

    // Candidate order: shallow loop depth first (cheap counters), then
    // layout order — deterministic.
    std::vector<int> Order;
    for (size_t N = 0; N + 1 < FG.Nodes.size(); ++N)
      if (G.isReachable(FG.Nodes[N]))
        Order.push_back(static_cast<int>(N));
    std::stable_sort(Order.begin(), Order.end(), [&](int A, int B) {
      Loop *LA = LI.loopFor(FG.Nodes[A]);
      Loop *LB = LI.loopFor(FG.Nodes[B]);
      unsigned DA = LA ? LA->Depth : 0;
      unsigned DB = LB ? LB->Depth : 0;
      return DA < DB;
    });

    std::vector<bool> Chosen(FG.Nodes.size(), false);
    bool Done = false;
    for (unsigned Picks = 0; Picks <= Order.size(); ++Picks) {
      std::vector<bool> Known;
      if (fullyDetermined(FG, Chosen, &Known)) {
        Done = true;
        break;
      }
      // Pick the first not-yet-determined candidate.
      int Pick = -1;
      for (int N : Order)
        if (!Chosen[N] && !Known[N]) {
          Pick = N;
          break;
        }
      if (Pick < 0)
        break; // all blocks known, but some edge is not: need a dummy
      Chosen[Pick] = true;
    }
    if (Done) {
      for (size_t N = 0; N + 1 < FG.Nodes.size(); ++N)
        if (Chosen[N])
          Plan.CountedBlocks.push_back(FG.Nodes[N]->label());
      return Plan;
    }
    // Some edge is undeterminable from block counts alone: create a dummy
    // block on a crossing edge (multi-successor source into multi-
    // predecessor target) and retry.
    bool Split = false;
    for (size_t EI = 0; EI != FG.Edges.size() && !Split; ++EI) {
      const FlowGraph::FEdge &E = FG.Edges[EI];
      if (!E.SrcFrom || !E.SrcTo)
        continue;
      // Re-find the CFG edge and split it. Prefer edges between blocks
      // with multiple successors and predecessors (the undeterminable
      // crossing pattern).
      if (G.succs(E.SrcFrom).size() < 2 || G.preds(E.SrcTo).size() < 2)
        continue;
      for (const CfgEdge &CE : G.succs(E.SrcFrom))
        if (CE.To == E.SrcTo) {
          splitEdge(F, CE);
          ++Plan.NumDummies;
          Split = true;
          break;
        }
    }
    if (!Split)
      break; // cannot make progress; fall through to "count everything"
  }

  // Fallback: count every block (never expected, but total).
  Plan.CountedBlocks.clear();
  for (auto &BB : F.blocks())
    Plan.CountedBlocks.push_back(BB->label());
  return Plan;
}

Instrumentation vsc::instrumentModule(Module &M, bool HoistCounters) {
  Instrumentation Info;
  // Plan first (mutates CFGs deterministically).
  for (auto &F : M.functions())
    Info.Plans[F->name()] = planCounters(*F);

  // Count total slots and create the table.
  size_t Slots = 0;
  for (auto &F : M.functions())
    Slots += Info.Plans[F->name()].CountedBlocks.size();
  Global &Table = M.addGlobal(CounterTable, 8 * std::max<size_t>(Slots, 1));
  (void)Table;

  size_t Slot = 0;
  for (auto &F : M.functions()) {
    const CounterPlan &Plan = Info.Plans[F->name()];
    if (Plan.CountedBlocks.empty())
      continue;
    // One table register per function, initialized on entry — the paper's
    // "r31 = initialized to address of global basic block counts table".
    Reg Tab = F->freshGpr();
    {
      Instr I;
      I.Op = Opcode::LTOC;
      I.Dst = Tab;
      I.Sym = CounterTable;
      F->assignId(I);
      F->entry()->instrs().insert(F->entry()->instrs().begin(),
                                  std::move(I));
    }
    for (const std::string &Label : Plan.CountedBlocks) {
      BasicBlock *BB = F->findBlock(Label);
      assert(BB && "planned block vanished");
      Reg Val = F->freshGpr();
      int64_t Disp = static_cast<int64_t>(8 * Slot);
      std::vector<Instr> Code;
      {
        Instr I;
        I.Op = Opcode::L;
        I.Dst = Val;
        I.Src1 = Tab;
        I.Imm = Disp;
        I.MemSize = 8;
        I.Sym = CounterTable;
        Code.push_back(I);
      }
      {
        Instr I;
        I.Op = Opcode::AI;
        I.Dst = Val;
        I.Src1 = Val;
        I.Imm = 1;
        Code.push_back(I);
      }
      {
        Instr I;
        I.Op = Opcode::ST;
        I.Src1 = Val;
        I.Src2 = Tab;
        I.Imm = Disp;
        I.MemSize = 8;
        I.Sym = CounterTable;
        Code.push_back(I);
      }
      // The entry block keeps the table load first.
      size_t Base = (BB == F->entry()) ? 1 : 0;
      for (size_t K = 0; K != Code.size(); ++K) {
        F->assignId(Code[K]);
        BB->instrs().insert(
            BB->instrs().begin() + static_cast<long>(Base + K), Code[K]);
      }
      Info.SlotKeys.push_back(blockCountKey(F->name(), Label));
      ++Slot;
    }
  }

  if (HoistCounters) {
    // The paper's optimization: counter cells are loop-invariant locations,
    // so speculative load/store motion register-caches them, leaving one
    // AI per counted block inside loops.
    speculativeLoadStoreMotion(M);
    for (auto &F : M.functions()) {
      copyPropagate(*F);
      localValueNumbering(*F);
      deadCodeElim(*F);
      classicalLicm(*F);
      // Coalesce the register-cached "AI rV = rC, 1; LR rC = rV" pairs to
      // the paper's single in-loop instruction per counted block.
      limitedCombine(*F);
      deadCodeElim(*F);
    }
  }
  return Info;
}

std::unordered_map<std::string, uint64_t>
vsc::readCounters(const RunResult &R, const Instrumentation &Info) {
  std::unordered_map<std::string, uint64_t> Out;
  auto It = R.GlobalBase.find(CounterTable);
  if (It == R.GlobalBase.end())
    return Out;
  for (size_t Slot = 0; Slot != Info.SlotKeys.size(); ++Slot)
    Out[Info.SlotKeys[Slot]] = static_cast<uint64_t>(
        readMemoryWord(R, It->second + 8 * Slot, 8));
  return Out;
}

std::string vsc::inferCounts(
    Function &F, const std::unordered_map<std::string, uint64_t> &Counted,
    ProfileData &Out) {
  Cfg G(F);
  FlowGraph FG(F, G);
  std::vector<std::optional<uint64_t>> NodeVal(FG.Nodes.size());
  std::vector<std::optional<uint64_t>> EdgeVal(FG.Edges.size());
  for (size_t N = 0; N + 1 < FG.Nodes.size(); ++N) {
    auto It = Counted.find(blockCountKey(F.name(), FG.Nodes[N]->label()));
    if (It != Counted.end())
      NodeVal[N] = It->second;
  }
  // Unreachable blocks execute zero times.
  for (size_t N = 0; N + 1 < FG.Nodes.size(); ++N)
    if (!G.isReachable(FG.Nodes[N]))
      NodeVal[N] = 0;

  if (!propagate(FG, NodeVal, EdgeVal))
    return F.name() + ": inconsistent counter values";
  for (size_t N = 0; N + 1 < FG.Nodes.size(); ++N) {
    if (!NodeVal[N])
      return F.name() + ": block '" + FG.Nodes[N]->label() +
             "' undetermined";
    Out.BlockCount[blockCountKey(F.name(), FG.Nodes[N]->label())] =
        *NodeVal[N];
  }
  for (size_t E = 0; E != FG.Edges.size(); ++E) {
    const FlowGraph::FEdge &FE = FG.Edges[E];
    if (!FE.SrcFrom || !FE.SrcTo)
      continue;
    if (!EdgeVal[E])
      return F.name() + ": edge '" + FE.SrcFrom->label() + "->" +
             FE.SrcTo->label() + "' undetermined";
    Out.EdgeCount[edgeCountKey(F.name(), FE.SrcFrom->label(),
                               FE.SrcTo->label())] = *EdgeVal[E];
  }
  return "";
}

ProfileCollector::ProfileCollector(const Module &Source,
                                   const MachineModel &Machine,
                                   bool HoistCounters)
    : Instrumented(cloneModule(Source)),
      Info(instrumentModule(*Instrumented, HoistCounters)),
      Engine(*Instrumented, Machine) {}

std::unordered_map<std::string, uint64_t>
ProfileCollector::counts(const RunOptions &Train) {
  RunOptions Opts = Train;
  Opts.KeepMemory = true;
  RunResult R = Engine.run(Opts);
  return readCounters(R, Info);
}

std::unordered_map<std::string, uint64_t>
ProfileCollector::counts(const std::vector<RunOptions> &Battery,
                         unsigned Threads) {
  std::vector<RunOptions> Batch = Battery;
  for (RunOptions &O : Batch)
    O.KeepMemory = true;
  std::vector<RunResult> Runs = Engine.runBatch(Batch, Threads);
  // Summed in battery order — identical at every thread count.
  std::unordered_map<std::string, uint64_t> Sum;
  for (const RunResult &R : Runs)
    for (const auto &[Key, Val] : readCounters(R, Info))
      Sum[Key] += Val;
  return Sum;
}

std::string ProfileCollector::expand(
    Module &Target,
    const std::unordered_map<std::string, uint64_t> &Counted,
    ProfileData &Out) {
  std::string FirstErr;
  for (auto &F : Target.functions()) {
    planCounters(*F); // identical flow-graph surgery as pass 1
    std::string Err = inferCounts(*F, Counted, Out);
    if (!Err.empty() && FirstErr.empty())
      FirstErr = Err;
  }
  return FirstErr;
}

ProfileData ProfileCollector::profileFor(Module &Target,
                                         const std::vector<RunOptions>
                                             &Battery,
                                         unsigned Threads,
                                         std::string *Err) {
  ProfileData P;
  std::string E = expand(Target, counts(Battery, Threads), P);
  if (!E.empty() && Err && Err->empty())
    *Err = E;
  return P;
}

ProfileData vsc::collectProfile(Module &Train, Module &Target,
                                const MachineModel &Machine,
                                const RunOptions &TrainOpts) {
  Instrumentation Info = instrumentModule(Train, /*HoistCounters=*/true);
  RunOptions Opts = TrainOpts;
  Opts.KeepMemory = true;
  RunResult R = simulate(Train, Machine, Opts);
  std::unordered_map<std::string, uint64_t> Counts = readCounters(R, Info);

  ProfileData P;
  for (auto &F : Target.functions()) {
    planCounters(*F); // identical flow-graph surgery as pass 1
    inferCounts(*F, Counts, P);
  }
  return P;
}
