//===- profile/PdfLayout.cpp - PDF block reordering & reversal ---------------===//

#include "profile/PdfLayout.h"

#include "cfg/CfgEdit.h"
#include "vliw/BlockExpansion.h"
#include "vliw/Schedule.h"

#include <algorithm>
#include <functional>

using namespace vsc;

double vsc::estimateProfiledCost(Function &F, const ProfileData &P,
                                 const MachineModel &MM) {
  Cfg G(F);
  double Cost = 0;
  for (const auto &BBPtr : F.blocks()) {
    BasicBlock *BB = BBPtr.get();
    if (!G.isReachable(BB))
      continue;
    uint64_t Count = P.block(F, BB);
    if (Count == 0)
      continue;
    Cost += static_cast<double>(Count) * estimateBlockCycles(*BB, MM);
  }
  // Redirect penalties for edges that do not fall through in this layout.
  for (const CfgEdge &E : G.edges()) {
    if (!E.IsTaken)
      continue;
    // Branch-on-count redirects are free in the model.
    if (E.TermIdx >= 0 &&
        E.From->instrs()[static_cast<size_t>(E.TermIdx)].Op == Opcode::BCT)
      continue;
    Cost += static_cast<double>(P.edge(F, E)) * MM.TakenBranchRedirect;
  }
  return Cost;
}

namespace {

/// Full structural snapshot (labels, instructions, layout order).
struct FunctionSnapshot {
  std::vector<std::pair<std::string, std::vector<Instr>>> Blocks;

  static FunctionSnapshot take(const Function &F) {
    FunctionSnapshot S;
    for (const auto &BB : F.blocks())
      S.Blocks.push_back({BB->label(), BB->instrs()});
    return S;
  }

  void restore(Function &F) const {
    F.blocks().clear();
    for (const auto &[Label, Instrs] : Blocks) {
      BasicBlock *BB = F.addBlock(Label);
      BB->instrs() = Instrs;
    }
  }
};

} // namespace

bool vsc::pdfLayoutGated(Function &F, const ProfileData &P,
                         const MachineModel &MM) {
  FunctionSnapshot Snap = FunctionSnapshot::take(F);
  double Before = estimateProfiledCost(F, P, MM);
  pdfReorderBlocks(F, P);
  pdfReverseBranches(F, P, MM);
  double After = estimateProfiledCost(F, P, MM);
  if (After >= Before) {
    Snap.restore(F);
    return false;
  }
  return true;
}

namespace {

/// Cycle sum of \p Battery against a fresh predecode of \p M; false when
/// any run traps.
bool batteryCycles(const Module &M, const MachineModel &MM,
                   const std::vector<RunOptions> &Battery, unsigned Threads,
                   uint64_t &Cycles) {
  SimEngine Engine(M, MM);
  Cycles = 0;
  for (const RunResult &R : Engine.runBatch(Battery, Threads)) {
    if (R.Trapped)
      return false;
    Cycles += R.Cycles;
  }
  return true;
}

} // namespace

bool vsc::pdfLayoutMeasured(Module &M, const ProfileData &P,
                            const MachineModel &MM,
                            const RunOptions *TrainInput) {
  std::vector<RunOptions> Battery;
  if (TrainInput)
    Battery.push_back(*TrainInput);
  return pdfLayoutMeasured(M, P, MM, Battery, /*Threads=*/1);
}

bool vsc::pdfLayoutMeasured(Module &M, const ProfileData &P,
                            const MachineModel &MM,
                            const std::vector<RunOptions> &TrainBattery,
                            unsigned Threads) {
  std::vector<FunctionSnapshot> Snaps;
  for (const auto &F : M.functions())
    Snaps.push_back(FunctionSnapshot::take(*F));

  uint64_t Before = 0;
  if (!TrainBattery.empty() &&
      !batteryCycles(M, MM, TrainBattery, Threads, Before))
    return false;
  for (auto &F : M.functions()) {
    pdfReorderBlocks(*F, P);
    pdfReverseBranches(*F, P, MM);
  }
  if (TrainBattery.empty())
    return true;
  uint64_t After = 0;
  if (batteryCycles(M, MM, TrainBattery, Threads, After) && After < Before)
    return true;
  for (size_t I = 0; I != Snaps.size(); ++I)
    Snaps[I].restore(*M.functions()[I]);
  return false;
}

bool vsc::pdfReorderBlocks(Function &F, const ProfileData &P) {
  Cfg G(F);
  // Depth-first enumeration, most probable successor first.
  std::vector<BasicBlock *> Order;
  std::unordered_set<const BasicBlock *> Visited;
  std::vector<BasicBlock *> Stack{F.entry()};
  // Recursive DFS expressed iteratively: "assign the next number to the
  // current node ... recursively visit the most probable successor first".
  std::function<void(BasicBlock *)> Visit = [&](BasicBlock *BB) {
    if (!Visited.insert(BB).second)
      return;
    Order.push_back(BB);
    std::vector<CfgEdge> Succs = G.succs(BB);
    std::stable_sort(Succs.begin(), Succs.end(),
                     [&](const CfgEdge &A, const CfgEdge &B) {
                       return P.edgeProbability(F, A) >
                              P.edgeProbability(F, B);
                     });
    for (const CfgEdge &E : Succs)
      Visit(E.To);
  };
  Visit(F.entry());

  // Already in this order?
  bool Same = Order.size() == F.blocks().size();
  for (size_t I = 0; Same && I != Order.size(); ++I)
    Same = F.blocks()[I].get() == Order[I];
  if (Same)
    return false;

  layoutBlocks(F, Order);
  straighten(F);
  return true;
}

bool vsc::pdfReverseBranches(Function &F, const ProfileData &P,
                             const MachineModel &MM, double Threshold) {
  bool Any = false;
  for (unsigned Guard = 0; Guard < 32; ++Guard) {
    Cfg G(F);
    bool Changed = false;
    for (auto &BBPtr : F.blocks()) {
      BasicBlock *BB = BBPtr.get();
      if (!G.isReachable(BB) || BB->empty())
        continue;
      Instr &Last = BB->instrs().back();
      if (Last.Op != Opcode::BT && Last.Op != Opcode::BF)
        continue; // only a lone conditional suffix has a fallthrough
      BasicBlock *Fall = G.fallthroughOf(BB);
      if (!Fall)
        continue;
      // Taken probability.
      double Prob = 0.0;
      for (const CfgEdge &E : G.succs(BB))
        if (E.IsTaken && E.TermIdx == static_cast<int>(BB->size() - 1))
          Prob = P.edgeProbability(F, E);
      if (Prob <= Threshold)
        continue;
      // Reverse: [BT X] + fallthrough Y  =>  [BF Y, B X].
      std::string X = Last.Target;
      Last.Op = Last.Op == Opcode::BT ? Opcode::BF : Opcode::BT;
      Last.Target = Fall->label();
      Instr B;
      B.Op = Opcode::B;
      B.Target = X;
      F.assignId(B);
      BB->instrs().push_back(std::move(B));
      Changed = true;
      Any = true;
      break;
    }
    if (!Changed)
      break;
  }
  if (Any)
    expandBasicBlocks(F, MM);
  return Any;
}
