//===- profile/ProfileData.h - Execution-count data -----------*- C++ -*-===//
///
/// \file
/// Execution counts consumed by profile-directed feedback: block counts and
/// edge counts keyed by "function:label" / "function:from->to". Two
/// producers exist: the simulator's exact ground truth (RunResult), and the
/// paper's low-overhead instrumentation pipeline (profile/Instrument.h +
/// profile/Inference.h), which counts only a subset of blocks and infers
/// the rest. "The flow graph edge counts are maintained as compiler
/// transformations occur" is approximated by key lookups that survive
/// label-preserving transformations; blocks created later have no counts
/// and report probability 0.5.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_PROFILE_PROFILEDATA_H
#define VSC_PROFILE_PROFILEDATA_H

#include "cfg/Cfg.h"
#include "sim/Simulator.h"

#include <string>
#include <unordered_map>

namespace vsc {

class ProfileData {
public:
  std::unordered_map<std::string, uint64_t> BlockCount;
  std::unordered_map<std::string, uint64_t> EdgeCount;

  static std::string blockKey(const Function &F, const BasicBlock *BB) {
    return blockCountKey(F.name(), BB->label());
  }
  static std::string edgeKey(const Function &F, const CfgEdge &E) {
    return edgeCountKey(F.name(), E.From->label(), E.To->label());
  }

  uint64_t block(const Function &F, const BasicBlock *BB) const {
    auto It = BlockCount.find(blockKey(F, BB));
    return It == BlockCount.end() ? 0 : It->second;
  }
  uint64_t edge(const Function &F, const CfgEdge &E) const {
    auto It = EdgeCount.find(edgeKey(F, E));
    return It == EdgeCount.end() ? 0 : It->second;
  }

  /// Probability that control leaving E.From follows E; 0.5 when the
  /// profile knows nothing about the source block.
  double edgeProbability(const Function &F, const CfgEdge &E) const {
    uint64_t B = block(F, E.From);
    if (B == 0)
      return 0.5;
    return static_cast<double>(edge(F, E)) / static_cast<double>(B);
  }

  bool hasDataFor(const Function &F, const BasicBlock *BB) const {
    return BlockCount.count(blockKey(F, BB)) != 0;
  }

  /// Ground-truth profile from a simulation run.
  static ProfileData fromRun(const RunResult &R) {
    ProfileData P;
    P.BlockCount = R.BlockCounts;
    P.EdgeCount = R.EdgeCounts;
    return P;
  }
};

} // namespace vsc

#endif // VSC_PROFILE_PROFILEDATA_H
