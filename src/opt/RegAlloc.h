//===- opt/RegAlloc.h - Linear-scan register allocation -------*- C++ -*-===//
///
/// \file
/// Linear-scan register allocation over the layout order. The paper's
/// passes all run before allocation ("within the back-end ... before
/// register allocation is performed"); this module supplies the stage
/// that would follow them in a production back end, mapping virtual GPRs
/// and CRs onto the RS/6000 register file:
///
///  * virtual GPR intervals that cross a call take callee-saved registers
///    (r14..r31); others prefer caller-saved (r0, r5..r10);
///  * r11/r12 are reserved as spill scratch; intervals that fit nowhere
///    are spilled to frame slots (reload before each use, store after
///    each definition);
///  * physical registers already in the code (arguments, the front end's
///    callee-saved locals, the stack/TOC pointers) are pre-colored: their
///    occupancy blocks overlapping virtual intervals;
///  * virtual CRs map onto cr0..cr7; condition registers cannot be
///    spilled, so allocation reports failure if more than eight CR
///    intervals overlap (callers then keep the function unallocated).
///
/// Run prolog insertion AFTER allocation so exactly the callee-saved
/// registers the allocator used are saved.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_OPT_REGALLOC_H
#define VSC_OPT_REGALLOC_H

#include "ir/Function.h"

namespace vsc {

struct RegAllocStats {
  unsigned GprAssigned = 0;
  unsigned CrAssigned = 0;
  unsigned Spilled = 0;
  /// CR intervals that fit nowhere (CRs cannot spill) and stay virtual.
  unsigned CrUnassigned = 0;
};

/// Allocates the virtual registers of \p F. All virtual GPRs are
/// eliminated (assigned or spilled); virtual CRs are assigned best-effort
/// (a CR live across a call, which clobbers all eight, cannot be spilled
/// and stays virtual — see RegAllocStats::CrUnassigned). \returns false
/// (leaving the function untouched) only when spilling would be required
/// but the scratch registers r11/r12 appear in existing code.
bool allocateRegisters(Function &F, RegAllocStats *Stats = nullptr);

/// \returns the number of virtual GPRs mentioned in \p F (0 after a
/// successful allocation).
size_t countVirtualGprs(const Function &F);

} // namespace vsc

#endif // VSC_OPT_REGALLOC_H
