//===- opt/Classical.cpp - Classical scalar optimizations ------------------===//

#include "opt/Classical.h"

#include "analysis/Liveness.h"
#include "analysis/MemAlias.h"
#include "analysis/ValueTrack.h"
#include "cfg/CfgEdit.h"
#include "cfg/Dominators.h"
#include "cfg/Loops.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <unordered_map>

using namespace vsc;

//===----------------------------------------------------------------------===//
// Copy propagation
//===----------------------------------------------------------------------===//

bool vsc::copyPropagate(Function &F) {
  bool Changed = false;
  std::vector<Reg> Defs;
  for (auto &BBPtr : F.blocks()) {
    BasicBlock *BB = BBPtr.get();
    std::unordered_map<Reg, Reg, RegHash> CopyOf; // dest -> original source

    auto Resolve = [&](Reg R) {
      auto It = CopyOf.find(R);
      return It == CopyOf.end() ? R : It->second;
    };
    auto Invalidate = [&](Reg D) {
      CopyOf.erase(D);
      for (auto It = CopyOf.begin(); It != CopyOf.end();) {
        if (It->second == D)
          It = CopyOf.erase(It);
        else
          ++It;
      }
    };

    for (Instr &I : BB->instrs()) {
      // Rewrite GPR uses through the copy map.
      auto RewriteUse = [&](Reg &R) {
        if (!R.isGpr())
          return;
        Reg New = Resolve(R);
        if (New != R) {
          R = New;
          Changed = true;
        }
      };
      const OpcodeInfo &Info = opcodeInfo(I.Op);
      if (Info.NumSrcs >= 1)
        RewriteUse(I.Src1);
      if (Info.NumSrcs >= 2)
        RewriteUse(I.Src2);

      // Kill mappings clobbered by this instruction's defs.
      Defs.clear();
      I.collectDefs(Defs);
      for (Reg D : Defs)
        if (D.isGpr())
          Invalidate(D);

      // Record a new copy. (Resolve already happened on Src1 above, so the
      // map stays in root form.)
      if (I.Op == Opcode::LR && I.Dst.isGpr() && I.Src1.isGpr() &&
          I.Dst != I.Src1)
        CopyOf[I.Dst] = I.Src1;
    }
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// Local value numbering
//===----------------------------------------------------------------------===//

namespace {

struct ExprKey {
  Opcode Op;
  int Vn1 = -1, Vn2 = -1;
  int64_t Imm = 0;
  std::string Sym;
  uint8_t MemSize = 0;
  uint64_t MemEpoch = 0;

  bool operator<(const ExprKey &RHS) const {
    return std::tie(Op, Vn1, Vn2, Imm, Sym, MemSize, MemEpoch) <
           std::tie(RHS.Op, RHS.Vn1, RHS.Vn2, RHS.Imm, RHS.Sym, RHS.MemSize,
                    RHS.MemEpoch);
  }
};

/// \returns true if \p I computes a pure value LVN may reuse.
bool isLvnCandidate(const Instr &I) {
  if (I.IsVolatile)
    return false;
  switch (I.Op) {
  case Opcode::LI:
  case Opcode::LTOC:
  case Opcode::LA:
  case Opcode::A:
  case Opcode::S:
  case Opcode::MUL:
  case Opcode::AND:
  case Opcode::OR:
  case Opcode::XOR:
  case Opcode::SL:
  case Opcode::SR:
  case Opcode::SRA:
  case Opcode::AI:
  case Opcode::SI:
  case Opcode::MULI:
  case Opcode::ANDI:
  case Opcode::ORI:
  case Opcode::XORI:
  case Opcode::SLI:
  case Opcode::SRI:
  case Opcode::SRAI:
  case Opcode::NEG:
  case Opcode::L:
    return true;
  default:
    return false;
  }
}

} // namespace

bool vsc::localValueNumbering(Function &F, const AliasAnalysis *AA) {
  bool Changed = false;
  std::vector<Reg> Defs;
  for (auto &BBPtr : F.blocks()) {
    BasicBlock *BB = BBPtr.get();
    int NextVn = 0;
    uint64_t MemEpoch = 0; // syntactic tier: one counter kills all loads
    std::unordered_map<Reg, int, RegHash> RegVn;
    // Flow-sensitive tier: a load's epoch is the position of the most
    // recent store/call that may touch its location, so provably-disjoint
    // stores no longer kill its value number. Positions start at 1 so an
    // epoch of 0 always means "no killer yet".
    std::vector<std::pair<uint64_t, Instr>> Stores;
    uint64_t LastCallPos = 0;
    std::unordered_map<Reg, uint64_t, RegHash> LastDefPos;
    uint64_t Pos = 0;
    struct Holder {
      int Vn;
      Reg R;
    };
    std::map<ExprKey, Holder> Table;

    auto VnOf = [&](Reg R) {
      auto It = RegVn.find(R);
      if (It != RegVn.end())
        return It->second;
      int Vn = NextVn++;
      RegVn[R] = Vn;
      return Vn;
    };

    auto LoadEpoch = [&](const Instr &Ld) -> uint64_t {
      if (!AA)
        return MemEpoch;
      uint64_t Epoch = LastCallPos;
      for (auto It = Stores.rbegin(); It != Stores.rend(); ++It) {
        if (It->first <= Epoch)
          break; // no older store can beat the current killer
        const Instr &St = It->second;
        // SameExecution additionally requires the shared base register
        // untouched between the store and the load.
        AliasScope Scope = AliasScope::CrossExecution;
        if (St.memBase() == Ld.memBase()) {
          auto DIt = LastDefPos.find(Ld.memBase());
          if (DIt == LastDefPos.end() || DIt->second <= It->first)
            Scope = AliasScope::SameExecution;
        }
        if (AA->alias(Ld, St, Scope) != AliasResult::NoAlias) {
          Epoch = It->first;
          break;
        }
      }
      return Epoch;
    };

    for (Instr &I : BB->instrs()) {
      // Record def positions up front. Recording the current instruction's
      // own defs before its query is conservative-only: it matters just
      // for a load whose destination is its own base register, which then
      // downgrades to CrossExecution.
      ++Pos;
      if (AA) {
        Defs.clear();
        I.collectDefs(Defs);
        for (Reg D : Defs)
          LastDefPos[D] = Pos;
      }
      if (I.isStore() || I.isCall()) {
        ++MemEpoch;
        if (AA) {
          if (I.isStore())
            Stores.emplace_back(Pos, I);
          else
            LastCallPos = Pos;
        }
        if (I.isCall()) {
          Defs.clear();
          I.collectDefs(Defs);
          for (Reg D : Defs)
            RegVn[D] = NextVn++;
        }
        continue;
      }
      if (!isLvnCandidate(I) || !I.Dst.isGpr()) {
        Defs.clear();
        I.collectDefs(Defs);
        for (Reg D : Defs)
          RegVn[D] = NextVn++;
        // An LR still forwards its source's value number.
        if (I.Op == Opcode::LR && I.Src1.isGpr())
          RegVn[I.Dst] = VnOf(I.Src1);
        continue;
      }

      const OpcodeInfo &Info = opcodeInfo(I.Op);
      ExprKey Key;
      Key.Op = I.Op;
      if (Info.NumSrcs >= 1)
        Key.Vn1 = VnOf(I.Src1);
      if (Info.NumSrcs >= 2)
        Key.Vn2 = VnOf(I.Src2);
      Key.Imm = Info.HasImm ? I.Imm : 0;
      Key.Sym = I.Sym;
      Key.MemSize = I.isMemAccess() ? I.MemSize : 0;
      Key.MemEpoch = I.isLoad() ? LoadEpoch(I) : 0;

      auto It = Table.find(Key);
      if (It != Table.end() && RegVn.count(It->second.R) &&
          RegVn[It->second.R] == It->second.Vn && It->second.R != I.Dst) {
        // Reuse: rewrite as a register copy.
        Reg Holder = It->second.R;
        int Vn = It->second.Vn;
        Instr Copy;
        Copy.Op = Opcode::LR;
        Copy.Dst = I.Dst;
        Copy.Src1 = Holder;
        Copy.Id = I.Id;
        I = Copy;
        RegVn[I.Dst] = Vn;
        Changed = true;
        continue;
      }
      int Vn = NextVn++;
      RegVn[I.Dst] = Vn;
      Table[Key] = Holder{Vn, I.Dst};
    }
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// Dead code elimination
//===----------------------------------------------------------------------===//

/// One DCE sweep. \returns true if an instruction died. All three
/// analyses are fetched up front, before any erase, so the sweep works on
/// a consistent snapshot; the caller invalidates after a changed sweep.
static bool dceOnce(Function &F, FunctionAnalyses &FA) {
  const Cfg &G = FA.cfg();
  const RegUniverse &U = FA.universe();
  const Liveness &L = FA.liveness();
  bool Changed = false;
  std::vector<Reg> Defs;

  for (auto &BBPtr : F.blocks()) {
    BasicBlock *BB = BBPtr.get();
    if (!G.isReachable(BB))
      continue;
    BitVector Live = L.liveOut(BB);
    for (size_t I = BB->size(); I-- > 0;) {
      Instr &Ins = BB->instrs()[I];
      Defs.clear();
      Ins.collectDefs(Defs);

      bool AnyDefLive = Defs.empty();
      for (Reg D : Defs) {
        int Idx = U.indexOf(D);
        if (Idx >= 0 && Live.test(static_cast<size_t>(Idx)))
          AnyDefLive = true;
      }
      bool Removable = !AnyDefLive && !Ins.hasSideEffects() &&
                       !Ins.isTerminator() && opcodeInfo(Ins.Op).HasDst;
      if (Removable) {
        BB->instrs().erase(BB->instrs().begin() + static_cast<long>(I));
        Changed = true;
        continue;
      }
      // Update the running live set.
      for (Reg D : Defs) {
        int Idx = U.indexOf(D);
        if (Idx >= 0)
          Live.reset(static_cast<size_t>(Idx));
      }
      Defs.clear();
      Ins.collectUses(Defs);
      for (Reg Use : Defs) {
        int Idx = U.indexOf(Use);
        if (Idx >= 0)
          Live.set(static_cast<size_t>(Idx));
      }
    }
  }
  return Changed;
}

bool vsc::deadCodeElim(Function &F, FunctionAnalyses &FA) {
  bool Any = false;
  while (dceOnce(F, FA)) {
    // Erasing instructions shifts CfgEdge::TermIdx — structural, even
    // though the graph shape is unchanged.
    FA.invalidateAll();
    Any = true;
  }
  return Any;
}

bool vsc::deadCodeElim(Function &F) {
  FunctionAnalyses FA(F);
  return deadCodeElim(F, FA);
}

//===----------------------------------------------------------------------===//
// Classical loop-invariant code motion
//===----------------------------------------------------------------------===//

static bool licmOnLoop(Function &F, Loop &L, const Cfg &G,
                       const Dominators &Dom, const AliasAnalysis *AA) {
  BasicBlock *PH = ensurePreheader(F, G, L);
  if (!PH)
    return false;

  // Registers with a definition inside the loop, with def counts.
  std::unordered_map<Reg, unsigned, RegHash> DefCount;
  std::vector<Reg> Tmp;
  for (BasicBlock *BB : L.Blocks) {
    for (const Instr &I : BB->instrs()) {
      Tmp.clear();
      I.collectDefs(Tmp);
      for (Reg D : Tmp)
        ++DefCount[D];
    }
  }
  // Any store or call inside the loop blocks loads from being hoisted
  // unless provably no-alias with every one of them. Copies, not pointers:
  // hoisting below shifts the instruction vectors.
  std::vector<Instr> Clobbers;
  bool HasCall = false;
  for (BasicBlock *BB : L.Blocks)
    for (const Instr &I : BB->instrs()) {
      if (I.isStore())
        Clobbers.push_back(I);
      if (I.isCall())
        HasCall = true;
    }

  RegUniverse U(F);
  Cfg G2(F); // preheader creation may have changed the graph
  Liveness Live(G2, U);

  bool Changed = false;
  for (BasicBlock *BB : L.Blocks) {
    // Classical safety: the block must execute on every iteration, i.e.
    // dominate every latch.
    bool DominatesLatches = true;
    for (BasicBlock *Latch : L.Latches)
      if (!Dom.dominates(BB, Latch))
        DominatesLatches = false;
    if (!DominatesLatches)
      continue;

    for (size_t II = 0; II < BB->size();) {
      Instr &I = BB->instrs()[II];
      bool Pure = I.isSafeToSpeculate();
      bool IsLoad = I.isLoad() && I.Op == Opcode::L && !I.IsVolatile;
      if ((!Pure && !IsLoad) || !opcodeInfo(I.Op).HasDst ||
          !I.Dst.isValid()) {
        ++II;
        continue;
      }
      // Operands invariant?
      Tmp.clear();
      I.collectUses(Tmp);
      bool Invariant = true;
      for (Reg S : Tmp) {
        auto It = DefCount.find(S);
        if (It != DefCount.end() && It->second > 0)
          Invariant = false;
      }
      // Single def of the destination, not live into the header (no
      // loop-carried use of the previous value).
      auto DefIt = DefCount.find(I.Dst);
      if (DefIt == DefCount.end() || DefIt->second != 1 ||
          Live.isLiveIn(L.Header, I.Dst))
        Invariant = false;
      if (IsLoad) {
        if (HasCall)
          Invariant = false;
        // CrossExecution: the load and the store execute in different
        // iterations (and after hoisting, the load runs before the loop).
        for (const Instr &St : Clobbers)
          if ((AA ? AA->alias(I, St, AliasScope::CrossExecution)
                  : alias(I, St, AliasScope::CrossExecution)) !=
              AliasResult::NoAlias)
            Invariant = false;
      }
      if (!Invariant) {
        ++II;
        continue;
      }
      // Hoist to the preheader.
      Instr Moved = I;
      Reg MovedDst = I.Dst;
      BB->instrs().erase(BB->instrs().begin() + static_cast<long>(II));
      PH->instrs().insert(PH->instrs().begin() +
                              static_cast<long>(PH->firstTerminatorIdx()),
                          std::move(Moved));
      --DefCount[MovedDst];
      Changed = true;
      // Re-run from the top of the block: hoisting may enable more.
      II = 0;
    }
  }
  return Changed;
}

bool vsc::classicalLicm(Function &F, FunctionAnalyses &FA, bool FlowAlias) {
  bool Any = false;
  bool Changed = true;
  unsigned Guard = 0;
  while (Changed && Guard++ < 8) {
    Changed = false;
    const Cfg &G = FA.cfg();
    const Dominators &Dom = FA.dominators();
    // The pointer stays valid through licmOnLoop: preheader creation and
    // invariant hoisting change neither the base-register contents any
    // surviving instruction observes nor the queried instructions' blocks.
    const AliasAnalysis *AA = FlowAlias ? &FA.aliasAnalysis() : nullptr;
    for (Loop *L : FA.loops().innermostLoops()) {
      if (licmOnLoop(F, *L, G, Dom, AA)) {
        // Hoisting moved instructions (and may have made a preheader);
        // drop everything and recompute on the next round.
        FA.invalidateAll();
        Changed = true;
        Any = true;
        break;
      }
    }
  }
  return Any;
}

bool vsc::classicalLicm(Function &F) {
  FunctionAnalyses FA(F);
  return classicalLicm(F, FA);
}

//===----------------------------------------------------------------------===//
// Pipeline
//===----------------------------------------------------------------------===//

bool vsc::runClassicalPipeline(Function &F, FunctionAnalyses &FA,
                               bool FlowAlias) {
  bool Any = false;
  for (unsigned Round = 0; Round < 8; ++Round) {
    bool Changed = false;
    // Copy propagation and LVN rewrite instructions in place — branches
    // and block boundaries survive, register contents do not.
    if (copyPropagate(F)) {
      FA.invalidate(PreservedAnalyses::structure());
      Changed = true;
    }
    // Fetch alias facts only after copy propagation invalidated them: LVN
    // must query the function it is about to walk. Its own load->LR
    // rewrites keep the facts valid mid-walk (the copy writes the same
    // value the load produced).
    if (localValueNumbering(F, FlowAlias ? &FA.aliasAnalysis() : nullptr)) {
      FA.invalidate(PreservedAnalyses::structure());
      Changed = true;
    }
    Changed |= deadCodeElim(F, FA);
    Changed |= classicalLicm(F, FA, FlowAlias);
    // straighten() bumps the CFG epoch itself when it edits.
    Changed |= straighten(F);
    if (!Changed)
      break;
    Any = true;
  }
  return Any;
}

bool vsc::runClassicalPipeline(Function &F) {
  FunctionAnalyses FA(F);
  return runClassicalPipeline(F, FA);
}

void vsc::runClassicalPipeline(Module &M) {
  for (auto &F : M.functions())
    runClassicalPipeline(*F);
}
