//===- opt/RegAlloc.cpp - Linear-scan register allocation ---------------------===//

#include "opt/RegAlloc.h"

#include "analysis/Liveness.h"
#include "cfg/Cfg.h"
#include "support/BitVector.h"
#include "vliw/Frame.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <unordered_set>

using namespace vsc;

namespace {

/// Scratch registers reserved for spill reloads/stores.
const uint32_t ScratchA = 11, ScratchB = 12;

struct Interval {
  Reg V;
  size_t Start = ~size_t(0);
  size_t End = 0;

  void extend(size_t P) {
    Start = std::min(Start, P);
    End = std::max(End, P);
  }
};

struct Allocation {
  std::unordered_map<Reg, Reg, RegHash> Assigned;
  std::vector<Reg> Spilled;
};

class LinearScan {
public:
  explicit LinearScan(Function &F) : F(F), G(F), U(F), Live(G, U) {}

  /// Computes intervals and runs the scan. \returns false on CR overflow.
  bool plan(Allocation &Out, RegAllocStats *Stats) {
    numberPositions();
    buildIntervals();
    buildPhysicalOccupancy();
    return scan(Out, Stats);
  }

private:
  void numberPositions() {
    size_t K = 0;
    for (const auto &BB : F.blocks())
      for (size_t I = 0; I != BB->size(); ++I)
        (void)I, ++K;
    NumPositions = 2 * K + 2;
  }

  void buildIntervals() {
    size_t K = 0;
    std::vector<Reg> Tmp;
    for (const auto &BBPtr : F.blocks()) {
      const BasicBlock *BB = BBPtr.get();
      std::vector<BitVector> LiveAt = Live.liveAtEachInstr(BB);
      for (size_t I = 0; I != BB->size(); ++I, ++K) {
        const Instr &Ins = BB->instrs()[I];
        // Precise per-instruction liveness: live-before covers uses;
        // definitions extend to the def position (covers dead defs too).
        for (size_t Idx = 0; Idx != U.size(); ++Idx) {
          Reg R = U.regAt(Idx);
          if (R.isVirtual() && LiveAt[I].test(Idx))
            IntervalOf(R).extend(2 * K);
        }
        Tmp.clear();
        Ins.collectDefs(Tmp);
        for (Reg R : Tmp)
          if (R.isVirtual())
            IntervalOf(R).extend(2 * K + 1);
      }
      // Live-out of the block extends past its final position.
      for (size_t Idx = 0; Idx != U.size(); ++Idx) {
        Reg R = U.regAt(Idx);
        if (R.isVirtual() && Live.liveOut(BB).test(Idx))
          IntervalOf(R).extend(2 * K);
      }
    }
  }

  /// Marks where each physical register is in use, so virtual intervals
  /// cannot overlap them. Call clobbers are ordinary defs here, which is
  /// what forces call-crossing intervals into callee-saved registers.
  void buildPhysicalOccupancy() {
    for (auto &BV : GprOcc)
      BV = BitVector(NumPositions);
    for (auto &BV : CrOcc)
      BV = BitVector(NumPositions);

    // RET carries an implicit use of every callee-saved register (so
    // prolog restores are not dead code). A callee-saved register with no
    // definition in the function is live only by that convention — the
    // allocator may take it; prolog insertion afterwards makes the
    // convention hold again. Only *defined* callee-saved registers have
    // real occupancy.
    std::vector<bool> CalleeSavedDefined(32, false);
    {
      std::vector<Reg> Defs;
      for (const auto &BB : F.blocks())
        for (const Instr &I : BB->instrs()) {
          Defs.clear();
          I.collectDefs(Defs);
          for (Reg R : Defs)
            if (R.isCalleeSaved())
              CalleeSavedDefined[R.id()] = true;
        }
    }
    auto ConventionOnly = [&](Reg R) {
      return R.isCalleeSaved() && !CalleeSavedDefined[R.id()];
    };

    size_t K = 0;
    std::vector<Reg> Tmp;
    for (const auto &BBPtr : F.blocks()) {
      const BasicBlock *BB = BBPtr.get();
      std::vector<BitVector> LiveAt = Live.liveAtEachInstr(BB);
      for (size_t I = 0; I != BB->size(); ++I, ++K) {
        const Instr &Ins = BB->instrs()[I];
        auto MarkPhys = [&](Reg R, size_t Pos) {
          if (ConventionOnly(R))
            return;
          if (R.isGpr() && R.isPhysical())
            GprOcc[R.id()].set(Pos);
          else if (R.isCr() && R.isPhysical())
            CrOcc[R.id()].set(Pos);
        };
        // Live-before at the use position; live-after and defs at the
        // def position.
        for (size_t Idx = 0; Idx != U.size(); ++Idx) {
          Reg R = U.regAt(Idx);
          if (R.isVirtual())
            continue;
          if (LiveAt[I].test(Idx))
            MarkPhys(R, 2 * K);
          if (LiveAt[I + 1].test(Idx))
            MarkPhys(R, 2 * K + 1);
        }
        Tmp.clear();
        Ins.collectDefs(Tmp);
        for (Reg R : Tmp)
          MarkPhys(R, 2 * K + 1);
        Tmp.clear();
        Ins.collectUses(Tmp);
        for (Reg R : Tmp)
          MarkPhys(R, 2 * K);
      }
    }
  }

  bool physFree(const BitVector &Occ, const Interval &I) const {
    int Bit = Occ.findFirst();
    while (Bit >= 0 && static_cast<size_t>(Bit) < I.Start)
      Bit = Occ.findNext(static_cast<size_t>(Bit));
    return Bit < 0 || static_cast<size_t>(Bit) > I.End;
  }

  bool scan(Allocation &Out, RegAllocStats *Stats) {
    std::vector<Interval> Ivs;
    for (auto &[R, I] : Intervals)
      Ivs.push_back(I);
    std::sort(Ivs.begin(), Ivs.end(), [](const Interval &A,
                                         const Interval &B) {
      if (A.Start != B.Start)
        return A.Start < B.Start;
      if (A.End != B.End)
        return A.End < B.End;
      return A.V < B.V;
    });

    // GPR pool in preference order: caller-saved first (cheap), then
    // callee-saved (prolog insertion pays for them once).
    std::vector<uint32_t> GprPool = {5, 6, 7, 8, 9, 10, 0};
    for (uint32_t R2 = 14; R2 <= 31; ++R2)
      GprPool.push_back(R2);

    struct ActiveEntry {
      size_t End;
      Reg Phys;
      Reg V;
      bool operator<(const ActiveEntry &RHS) const { return End < RHS.End; }
    };
    std::vector<ActiveEntry> Active; // sorted by End ascending
    std::unordered_set<uint32_t> BusyGpr, BusyCr;

    for (const Interval &I : Ivs) {
      // Expire.
      while (!Active.empty() && Active.front().End < I.Start) {
        if (Active.front().Phys.isGpr())
          BusyGpr.erase(Active.front().Phys.id());
        else
          BusyCr.erase(Active.front().Phys.id());
        Active.erase(Active.begin());
      }

      Reg Chosen;
      if (I.V.isGpr()) {
        for (uint32_t P : GprPool) {
          if (BusyGpr.count(P) || !physFree(GprOcc[P], I))
            continue;
          Chosen = Reg::gpr(P);
          break;
        }
        if (!Chosen.isValid()) {
          // Poletto/Sarkar heuristic: evict the active interval with the
          // farthest end if it outlives the current one and its register
          // is also occupancy-free for the current interval.
          int Evict = -1;
          for (size_t AI = Active.size(); AI-- > 0;) {
            const ActiveEntry &E = Active[AI];
            if (!E.Phys.isGpr() || E.End <= I.End)
              continue;
            if (physFree(GprOcc[E.Phys.id()], I)) {
              Evict = static_cast<int>(AI);
              break; // Active is sorted by End: the last match is farthest
            }
          }
          if (Evict >= 0) {
            ActiveEntry E = Active[static_cast<size_t>(Evict)];
            Active.erase(Active.begin() + Evict);
            Out.Assigned.erase(E.V);
            Out.Spilled.push_back(E.V);
            if (Stats) {
              ++Stats->Spilled;
              --Stats->GprAssigned;
            }
            Chosen = E.Phys;
            BusyGpr.erase(Chosen.id()); // re-inserted below
          } else {
            Out.Spilled.push_back(I.V);
            if (Stats)
              ++Stats->Spilled;
            continue;
          }
        }
        BusyGpr.insert(Chosen.id());
        if (Stats)
          ++Stats->GprAssigned;
      } else if (I.V.isCr()) {
        for (uint32_t P = 0; P != 8; ++P) {
          if (BusyCr.count(P) || !physFree(CrOcc[P], I))
            continue;
          Chosen = Reg::cr(P);
          break;
        }
        if (!Chosen.isValid()) {
          // Condition registers cannot be spilled; the rare interval that
          // fits nowhere (e.g. a CR live across a call, which clobbers
          // all eight) stays virtual — best-effort allocation.
          if (Stats)
            ++Stats->CrUnassigned;
          continue;
        }
        BusyCr.insert(Chosen.id());
        if (Stats)
          ++Stats->CrAssigned;
      } else {
        continue;
      }
      Out.Assigned[I.V] = Chosen;
      ActiveEntry E{I.End, Chosen, I.V};
      Active.insert(std::upper_bound(Active.begin(), Active.end(), E), E);
    }
    return true;
  }

  Interval &IntervalOf(Reg R) {
    auto It = Intervals.find(R);
    if (It == Intervals.end()) {
      Interval I;
      I.V = R;
      It = Intervals.emplace(R, I).first;
    }
    return It->second;
  }

  Function &F;
  Cfg G;
  RegUniverse U;
  Liveness Live;
  size_t NumPositions = 0;
  std::unordered_map<Reg, Interval, RegHash> Intervals;
  BitVector GprOcc[32];
  BitVector CrOcc[8];
};

/// Rewrites assigned registers and expands spills.
void apply(Function &F, const Allocation &A) {
  // Frame slots for spills.
  std::unordered_map<Reg, int64_t, RegHash> SlotOf;
  if (!A.Spilled.empty()) {
    int64_t Base = growFrame(
        F, static_cast<int64_t>(8 * A.Spilled.size()));
    for (size_t I = 0; I != A.Spilled.size(); ++I)
      SlotOf[A.Spilled[I]] = Base + static_cast<int64_t>(8 * I);
  }

  auto MapReg = [&](Reg R) {
    auto It = A.Assigned.find(R);
    return It == A.Assigned.end() ? R : It->second;
  };
  auto IsSpilled = [&](Reg R) { return SlotOf.count(R) != 0; };

  for (auto &BBPtr : F.blocks()) {
    BasicBlock *BB = BBPtr.get();
    for (size_t I = 0; I < BB->size(); ++I) {
      Instr &Ins = BB->instrs()[I];
      const OpcodeInfo &Info = opcodeInfo(Ins.Op);

      // Direct assignment rewrites.
      if (Info.HasDst)
        Ins.Dst = MapReg(Ins.Dst);
      if (Info.NumSrcs >= 1)
        Ins.Src1 = MapReg(Ins.Src1);
      if (Info.NumSrcs >= 2)
        Ins.Src2 = MapReg(Ins.Src2);

      // Spill expansion.
      bool S1 = Info.NumSrcs >= 1 && IsSpilled(Ins.Src1);
      bool S2 = Info.NumSrcs >= 2 && IsSpilled(Ins.Src2);
      bool SD = Info.HasDst && IsSpilled(Ins.Dst);
      if (!S1 && !S2 && !SD)
        continue;

      std::unordered_map<Reg, Reg, RegHash> Scratch;
      auto ScratchFor = [&](Reg V) {
        auto It = Scratch.find(V);
        if (It != Scratch.end())
          return It->second;
        Reg S = Scratch.empty() ? Reg::gpr(ScratchA) : Reg::gpr(ScratchB);
        Scratch[V] = S;
        return S;
      };

      size_t InsertBefore = I;
      auto EmitReload = [&](Reg V) {
        Instr L;
        L.Op = Opcode::L;
        L.Dst = ScratchFor(V);
        L.Src1 = regs::sp();
        L.Imm = SlotOf.at(V);
        L.MemSize = 8;
        L.Sym = "$spill";
        F.assignId(L);
        BB->instrs().insert(BB->instrs().begin() +
                                static_cast<long>(InsertBefore),
                            std::move(L));
        ++InsertBefore;
        ++I;
      };

      // Reload sources (once per distinct spilled register).
      Reg OrigSrc1 = Ins.Src1, OrigSrc2 = Ins.Src2, OrigDst = Ins.Dst;
      bool IsLu = Ins.Op == Opcode::LU;
      if (S1)
        EmitReload(OrigSrc1);
      if (S2 && OrigSrc2 != OrigSrc1)
        EmitReload(OrigSrc2);

      Instr &Cur = BB->instrs()[I]; // reacquire after inserts
      if (S1)
        Cur.Src1 = Scratch.at(OrigSrc1);
      if (S2)
        Cur.Src2 = Scratch.at(OrigSrc2);
      if (IsLu && S1) {
        // LU also redefines its base: write the updated base back.
        Instr St;
        St.Op = Opcode::ST;
        St.Src1 = Scratch.at(OrigSrc1);
        St.Src2 = regs::sp();
        St.Imm = SlotOf.at(OrigSrc1);
        St.MemSize = 8;
        St.Sym = "$spill";
        F.assignId(St);
        BB->instrs().insert(BB->instrs().begin() + static_cast<long>(I) + 1,
                            std::move(St));
        ++I;
      }
      if (SD) {
        Reg DScratch = Scratch.count(OrigDst) ? Scratch.at(OrigDst)
                                              : Reg::gpr(ScratchA);
        Cur.Dst = DScratch;
        Instr St;
        St.Op = Opcode::ST;
        St.Src1 = DScratch;
        St.Src2 = regs::sp();
        St.Imm = SlotOf.at(OrigDst);
        St.MemSize = 8;
        St.Sym = "$spill";
        F.assignId(St);
        BB->instrs().insert(BB->instrs().begin() + static_cast<long>(I) + 1,
                            std::move(St));
        ++I; // skip the store
      }
    }
  }
  F.renumber();
}

} // namespace

size_t vsc::countVirtualGprs(const Function &F) {
  std::unordered_set<Reg, RegHash> Virtuals;
  std::vector<Reg> Tmp;
  for (const auto &BB : F.blocks())
    for (const Instr &I : BB->instrs()) {
      Tmp.clear();
      I.collectUses(Tmp);
      I.collectDefs(Tmp);
      for (Reg R : Tmp)
        if (R.isGpr() && R.isVirtual())
          Virtuals.insert(R);
    }
  return Virtuals.size();
}

bool vsc::allocateRegisters(Function &F, RegAllocStats *Stats) {
  LinearScan Scan(F);
  Allocation A;
  if (!Scan.plan(A, Stats))
    return false;
  // Spill expansion clobbers the scratch registers instruction-locally;
  // if existing code mentions r11/r12 explicitly, a live range could span
  // a reload. Refuse that (rare, hand-written-IR-only) combination.
  if (!A.Spilled.empty()) {
    std::vector<Reg> Tmp;
    for (const auto &BB : F.blocks())
      for (const Instr &I : BB->instrs()) {
        const OpcodeInfo &Info = opcodeInfo(I.Op);
        Reg Explicit[3] = {Info.HasDst ? I.Dst : Reg(),
                           Info.NumSrcs >= 1 ? I.Src1 : Reg(),
                           Info.NumSrcs >= 2 ? I.Src2 : Reg()};
        for (Reg R : Explicit)
          if (R.isGpr() && (R.id() == ScratchA || R.id() == ScratchB))
            return false;
      }
  }
  apply(F, A);
  assert(countVirtualGprs(F) == 0 && "allocation left virtual registers");
  return true;
}
