//===- opt/Inline.h - Function inlining -----------------------*- C++ -*-===//
///
/// \file
/// Leaf-function inlining. The paper's techniques stop at call
/// boundaries — live-range renaming and pipeline scheduling refuse loops
/// containing calls, and the I/O-builtin exception aside, calls block
/// memory disambiguation. Inlining small leaf callees (the classify()/
/// popcount() pattern in the workloads) exposes those loops.
///
/// Mechanics: the callee's blocks are cloned at the call site with every
/// register — virtual AND physical except r1/r2/ctr — remapped to fresh
/// virtuals (physical registers have meaning only across the call
/// boundary being deleted; CTR is explicitly clobbered by calls, so
/// leaving it shared is sound). Parameter registers r3..rN are copied
/// into the remapped parameter names at the inlined entry; each RET
/// becomes a branch to the continuation, which copies the remapped r3
/// back into the real r3.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_OPT_INLINE_H
#define VSC_OPT_INLINE_H

#include "ir/Module.h"

namespace vsc {

struct InlineOptions {
  /// Callees above this size are never inlined.
  size_t MaxCalleeInstrs = 48;
  /// Bound on total inlined instructions per caller (growth limit).
  size_t MaxGrowthPerCaller = 400;
};

/// Inlines eligible call sites: the callee must be a leaf (no calls to
/// anything but the I/O builtins), non-recursive by construction, small,
/// and not the caller itself. \returns number of call sites inlined.
unsigned inlineLeafFunctions(Module &M, const InlineOptions &Opts = {});

} // namespace vsc

#endif // VSC_OPT_INLINE_H
