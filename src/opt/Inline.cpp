//===- opt/Inline.cpp - Function inlining --------------------------------------===//

#include "opt/Inline.h"

#include <cassert>
#include <unordered_map>

using namespace vsc;

namespace {

/// \returns true if \p F calls nothing at all (not even builtins): its
/// physical argument/result registers can then be remapped wholesale.
bool isPureLeaf(const Function &F) {
  for (const auto &BB : F.blocks())
    for (const Instr &I : BB->instrs())
      if (I.isCall())
        return false;
  return true;
}

class RegRemapper {
public:
  explicit RegRemapper(Function &Caller) : Caller(Caller) {}

  Reg map(Reg R) {
    if (!R.isValid() || R == regs::sp() || R == regs::toc() || R.isCtr())
      return R;
    auto It = Map.find(R);
    if (It != Map.end())
      return It->second;
    Reg Fresh = R.isCr() ? Caller.freshCr() : Caller.freshGpr();
    Map[R] = Fresh;
    return Fresh;
  }

private:
  Function &Caller;
  std::unordered_map<Reg, Reg, RegHash> Map;
};

/// Inlines the call at \p B's instruction \p CallIdx to \p Callee.
void inlineSite(Function &F, BasicBlock *B, size_t CallIdx,
                const Function &Callee) {
  const Instr Call = B->instrs()[CallIdx];
  assert(Call.isCall() && "not a call site");
  size_t BIdx = F.indexOf(B);

  // Continuation block: the caller code after the call.
  BasicBlock *Cont = F.insertBlock(BIdx + 1, "inl.cont");
  Cont->instrs().assign(B->instrs().begin() + static_cast<long>(CallIdx) + 1,
                        B->instrs().end());
  B->instrs().erase(B->instrs().begin() + static_cast<long>(CallIdx),
                    B->instrs().end());

  RegRemapper Remap(F);

  // Copy actual arguments (in r3..rN right now) into the remapped
  // parameter registers.
  for (int64_t P = 0; P != Call.Imm; ++P) {
    Instr Copy;
    Copy.Op = Opcode::LR;
    Copy.Dst = Remap.map(regs::arg(static_cast<unsigned>(P)));
    Copy.Src1 = regs::arg(static_cast<unsigned>(P));
    F.assignId(Copy);
    B->instrs().push_back(std::move(Copy));
  }

  // Clone the callee's blocks between B and Cont.
  std::unordered_map<std::string, std::string> LabelMap;
  for (const auto &CB : Callee.blocks())
    LabelMap[CB->label()] = F.freshLabel("inl." + CB->label());

  size_t InsertAt = BIdx + 1;
  for (const auto &CB : Callee.blocks()) {
    BasicBlock *Clone = F.insertBlock(InsertAt++, "tmp");
    Clone->setLabel(LabelMap.at(CB->label()));
    for (const Instr &I : CB->instrs()) {
      Instr C = I;
      F.assignId(C);
      if (C.isRet()) {
        C = Instr();
        C.Op = Opcode::B;
        C.Target = Cont->label();
        F.assignId(C);
        Clone->instrs().push_back(std::move(C));
        continue;
      }
      const OpcodeInfo &Info = opcodeInfo(C.Op);
      if (Info.HasDst)
        C.Dst = Remap.map(C.Dst);
      if (Info.NumSrcs >= 1)
        C.Src1 = Remap.map(C.Src1);
      if (Info.NumSrcs >= 2)
        C.Src2 = Remap.map(C.Src2);
      if (C.isBranch())
        C.Target = LabelMap.at(C.Target);
      Clone->instrs().push_back(std::move(C));
    }
  }

  // The callee's result lives in its remapped r3; restore the real r3 for
  // the continuation.
  {
    Instr Copy;
    Copy.Op = Opcode::LR;
    Copy.Dst = regs::retval();
    Copy.Src1 = Remap.map(regs::retval());
    F.assignId(Copy);
    Cont->instrs().insert(Cont->instrs().begin(), std::move(Copy));
  }
}

} // namespace

unsigned vsc::inlineLeafFunctions(Module &M, const InlineOptions &Opts) {
  unsigned Inlined = 0;
  for (auto &FPtr : M.functions()) {
    Function &F = *FPtr;
    size_t Growth = 0;
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (size_t BI = 0; BI != F.blocks().size() && !Changed; ++BI) {
        BasicBlock *B = F.blocks()[BI].get();
        for (size_t I = 0; I != B->size(); ++I) {
          const Instr &Ins = B->instrs()[I];
          if (!Ins.isCall())
            continue;
          const Function *Callee = M.findFunction(Ins.Sym);
          if (!Callee || Callee == &F)
            continue;
          if (!isPureLeaf(*Callee))
            continue;
          size_t Size = Callee->instrCount();
          if (Size > Opts.MaxCalleeInstrs ||
              Growth + Size > Opts.MaxGrowthPerCaller)
            continue;
          inlineSite(F, B, I, *Callee);
          Growth += Size;
          ++Inlined;
          Changed = true;
          break;
        }
      }
    }
    F.renumber();
  }
  return Inlined;
}
