//===- opt/Classical.h - Classical scalar optimizations -------*- C++ -*-===//
///
/// \file
/// The classical optimizations the paper assumes have already run before
/// its VLIW techniques ("usually after classical optimizations have been
/// applied, but before register allocation"). These form the baseline
/// ("xlc -O") pipeline in the experiments:
///
///  * copy propagation (LR forwarding within extended blocks),
///  * local value numbering / common-subexpression elimination,
///  * dead code elimination (liveness based),
///  * classical loop-invariant code motion (non-speculative: the paper
///    contrasts its speculative load/store motion against this),
///  * branch simplification and straightening (cfg/CfgEdit.h).
///
/// Every pass returns true when it changed the function.
///
//===----------------------------------------------------------------------===//

#ifndef VSC_OPT_CLASSICAL_H
#define VSC_OPT_CLASSICAL_H

#include "ir/Function.h"
#include "ir/Module.h"
#include "pm/Analysis.h"

namespace vsc {

/// Forwards sources of LR copies (and LI constants into copy chains) to
/// later uses within each block, so DCE can remove the copies.
bool copyPropagate(Function &F);

/// Local value numbering: eliminates recomputation of pure expressions
/// within a block, replacing repeats with LR from the first computation.
/// Loads participate until a may-aliasing store or call intervenes; with
/// \p AA the "may alias" test is per-load (a store provably disjoint from
/// a load no longer kills its value number) instead of a single epoch
/// counter shared by all loads.
bool localValueNumbering(Function &F, const AliasAnalysis *AA = nullptr);

/// Removes instructions whose results are dead and which have no side
/// effects. Iterates to a fixed point. The \p FA overload reads liveness
/// from the cache and invalidates it after each mutating sweep.
bool deadCodeElim(Function &F);
bool deadCodeElim(Function &F, FunctionAnalyses &FA);

/// Classical (non-speculative) loop-invariant code motion: hoists pure
/// ALU ops whose operands are loop-invariant and, conservatively, loads
/// whose block dominates every loop exit when no in-loop store may alias.
/// This deliberately refuses the conditional loads/stores the paper's
/// speculative load/store motion handles — that contrast is experiment E7.
bool classicalLicm(Function &F);
bool classicalLicm(Function &F, FunctionAnalyses &FA, bool FlowAlias = true);

/// The full baseline pipeline; \returns true if anything changed. The
/// \p FA overload threads the analysis cache through every sub-pass (the
/// free-function form builds a throwaway cache).
bool runClassicalPipeline(Function &F);
bool runClassicalPipeline(Function &F, FunctionAnalyses &FA,
                          bool FlowAlias = true);
void runClassicalPipeline(Module &M);

} // namespace vsc

#endif // VSC_OPT_CLASSICAL_H
