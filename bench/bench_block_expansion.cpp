//===- bench/bench_block_expansion.cpp - Experiment E10 -----------------------===//
///
/// Basic block expansion: removing the RS/6000's untaken-conditional-
/// branch-then-taken-unconditional-branch stall by copying code from the
/// branch target. Sweeps the window size (the paper's knob that bounds
/// code expansion).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "ir/Parser.h"
#include "vliw/BlockExpansion.h"

using namespace vsc;

namespace {

std::unique_ptr<Module> buildStallLoop(unsigned Trips) {
  std::string Text = "func main(0) {\nentry:\n  LI r30 = " +
                     std::to_string(Trips) + "\n" + R"(  MTCTR r30
  LI r34 = 2000000
  LI r33 = 0
loop:
  AI r33 = r33, 1
  C cr0 = r33, r34
  BT never, cr0.eq
  B join
join:
  AI r35 = r35, 1
  AI r35 = r35, 3
  AI r35 = r35, 5
  AI r35 = r35, 7
  BCT loop
exit:
  A r3 = r33, r35
  CALL print_int, 1
  RET
never:
  LI r3 = -1
  CALL print_int, 1
  RET
}
)";
  std::string Err;
  auto M = parseModule(Text, &Err);
  assert(M && "kernel must parse");
  return M;
}

} // namespace

static void BM_ExpansionPass(benchmark::State &State) {
  for (auto _ : State) {
    auto M = buildStallLoop(100);
    expandBasicBlocks(*M->findFunction("main"), rs6000());
    benchmark::DoNotOptimize(M->instrCount());
  }
}
BENCHMARK(BM_ExpansionPass);

int main(int Argc, char **Argv) {
  std::printf("Basic block expansion (window-size sweep, 10000-trip stall "
              "loop)\n");
  std::printf("%8s %12s %14s %12s %10s\n", "window", "cycles",
              "branch-stall", "dyn", "static");
  auto Baseline = buildStallLoop(10000);
  RunResult RB = simulate(*Baseline, rs6000());
  std::printf("%8s %12llu %14llu %12llu %10zu\n", "none",
              static_cast<unsigned long long>(RB.Cycles),
              static_cast<unsigned long long>(RB.BranchStallCycles),
              static_cast<unsigned long long>(RB.DynInstrs),
              Baseline->instrCount());
  for (unsigned Window : {2u, 8u, 24u}) {
    auto M = buildStallLoop(10000);
    ExpansionOptions Opts;
    Opts.Window = Window;
    expandBasicBlocks(*M->findFunction("main"), rs6000(), Opts);
    RunResult R = simulate(*M, rs6000());
    checkSame(RB, R, "stall loop");
    std::printf("%8u %12llu %14llu %12llu %10zu\n", Window,
                static_cast<unsigned long long>(R.Cycles),
                static_cast<unsigned long long>(R.BranchStallCycles),
                static_cast<unsigned long long>(R.DynInstrs),
                M->instrCount());
  }
  std::printf("(a sufficient window removes the unconditional branch from "
              "the trace)\n\n");
  return runRegisteredBenchmarks(Argc, Argv);
}
