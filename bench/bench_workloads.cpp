//===- bench/bench_workloads.cpp - Irregular-suite measurement matrix -------===//
///
/// The full measurement matrix for every registered kernel (the six
/// SPECint92 substitutes and the five irregular kernels): cycles at
/// OptLevel::None, Classical and Vliw on each of the three machine
/// models, plus the Vliw+PDF cell (train on the short input, measure on
/// the reference input, through the pdf/PdfExperiment.h driver) with the
/// measured layout-gate decision. Every cell is fingerprint-checked
/// against the O0 run on the same machine — a divergence aborts the
/// binary before it can report numbers from a broken transformation.
///
/// The headline this table exists for: the bytecode-interpreter kernel's
/// ladder dispatch places the hottest opcode last, so without a profile
/// every dispatch pays a chain of taken-branch redirects; PDF layout
/// (reordering + branch reversal) recovers a double-digit gain, while
/// the chase kernel shows the gate correctly keeping the baseline when
/// layout cannot help a pointer-serial loop.
///
/// Writes the matrix as BENCH_workloads.json (override with
/// --workloads-out=FILE).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "pdf/PdfExperiment.h"

#include <cstring>

using namespace vsc;

namespace {

struct Cell {
  uint64_t O0 = 0;
  uint64_t Classical = 0;
  uint64_t Vliw = 0;
  uint64_t VliwPdf = 0;
  int LayoutKept = -1;
  double pdfGain() const {
    return VliwPdf ? static_cast<double>(Vliw) /
                         static_cast<double>(VliwPdf)
                   : 1.0;
  }
};

Cell measure(const Workload &W, const MachineModel &Machine) {
  Cell C;
  auto M0 = buildAt(W, OptLevel::None, Machine);
  RunResult R0 = runRef(*M0, W, Machine);
  C.O0 = R0.Cycles;

  auto MC = buildAt(W, OptLevel::Classical, Machine);
  RunResult RC = runRef(*MC, W, Machine);
  checkSame(R0, RC, (W.Name + "/" + Machine.Name + " classical").c_str());
  C.Classical = RC.Cycles;

  auto MV = buildAt(W, OptLevel::Vliw, Machine);
  RunResult RV = runRef(*MV, W, Machine);
  checkSame(R0, RV, (W.Name + "/" + Machine.Name + " vliw").c_str());
  C.Vliw = RV.Cycles;

  auto Source = buildWorkload(W);
  PdfExperimentOptions Opts;
  Opts.Machine = Machine;
  Opts.Train = {workloadInput(W.TrainScale)};
  Opts.Test = {workloadInput(W.RefScale)};
  Opts.ProfileSource = PdfExperimentOptions::Source::Counters;
  PdfExperimentResult R = runPdfExperiment(*Source, Opts);
  if (!R.ok()) {
    std::fprintf(stderr, "%s on %s: %s\n", W.Name.c_str(),
                 Machine.Name.c_str(), R.Error.c_str());
    std::abort();
  }
  checkSame(R0, R.GuidedRuns.front(),
            (W.Name + "/" + Machine.Name + " vliw+pdf").c_str());
  C.VliwPdf = R.GuidedCycles;
  C.LayoutKept = R.PdfLayoutKept;
  return C;
}

} // namespace

static void BM_SimulateIrregularVliw(benchmark::State &State) {
  const Workload &W =
      irregularWorkloads()[static_cast<size_t>(State.range(0))];
  auto M = buildAt(W, OptLevel::Vliw, rs6000());
  for (auto _ : State) {
    RunResult R = runRef(*M, W, rs6000());
    benchmark::DoNotOptimize(R.Cycles);
  }
  State.SetLabel(W.Name);
}
BENCHMARK(BM_SimulateIrregularVliw)
    ->DenseRange(0, static_cast<int>(irregularWorkloads().size()) - 1);

int main(int Argc, char **Argv) {
  std::string OutPath = "BENCH_workloads.json";
  std::vector<char *> Rest;
  for (int I = 0; I != Argc; ++I) {
    if (std::strncmp(Argv[I], "--workloads-out=", 16) == 0)
      OutPath = Argv[I] + 16;
    else
      Rest.push_back(Argv[I]);
  }
  int RestArgc = static_cast<int>(Rest.size());

  const MachineModel Machines[] = {rs6000(), power2(), ppc601()};
  std::printf("Workload measurement matrix (reference inputs; cycles)\n");
  std::printf("%-10s %-7s %12s %12s %12s %12s %6s %9s\n", "Benchmark",
              "machine", "O0", "classical", "vliw", "vliw+pdf", "kept",
              "pdf-gain");

  JsonWriter Json;
  Json.beginObject().key("bench").str("workloads").key("kernels")
      .beginArray();
  std::vector<double> PdfGains[2]; // [0]=spec six, [1]=irregular
  const auto &Ws = workloads::allKernels();
  for (size_t I = 0; I != Ws.size(); ++I) {
    const Workload &W = Ws[I];
    bool Irr = workloads::isIrregular(W);
    Json.beginObject()
        .key("name")
        .str(W.Name)
        .key("irregular")
        .boolean(Irr)
        .key("machines")
        .beginArray();
    for (size_t MI = 0; MI != 3; ++MI) {
      const MachineModel &Machine = Machines[MI];
      Cell C = measure(W, Machine);
      if (Machine.Name == "rs6000")
        PdfGains[Irr].push_back(C.pdfGain());
      std::printf("%-10s %-7s %12llu %12llu %12llu %12llu %6d %8.1f%%\n",
                  W.Name.c_str(), Machine.Name.c_str(),
                  static_cast<unsigned long long>(C.O0),
                  static_cast<unsigned long long>(C.Classical),
                  static_cast<unsigned long long>(C.Vliw),
                  static_cast<unsigned long long>(C.VliwPdf), C.LayoutKept,
                  (C.pdfGain() - 1.0) * 100.0);
      Json.beginObject()
          .key("model")
          .str(Machine.Name)
          .key("cycles_o0")
          .num(C.O0)
          .key("cycles_classical")
          .num(C.Classical)
          .key("cycles_vliw")
          .num(C.Vliw)
          .key("cycles_vliw_pdf")
          .num(C.VliwPdf)
          .key("pdf_layout_kept")
          .num(C.LayoutKept)
          .key("pdf_gain")
          .num(C.pdfGain(), 4)
          .endObject();
    }
    Json.endArray().endObject();
  }
  double SpecGain = geomean(PdfGains[0]);
  double IrrGain = geomean(PdfGains[1]);
  std::printf("%-10s %-7s %12s %12s %12s %12s %6s %8.1f%%\n",
              "spec-six", "rs6000", "", "", "", "", "",
              (SpecGain - 1.0) * 100.0);
  std::printf("%-10s %-7s %12s %12s %12s %12s %6s %8.1f%%\n",
              "irregular", "rs6000", "", "", "", "", "",
              (IrrGain - 1.0) * 100.0);
  std::printf("(pdf-gain geomeans; kept: 1 = measured gate kept the PDF "
              "layout, 0 = rolled back, -1 = gate not reached)\n\n");

  Json.endArray()
      .key("spec_pdf_gain_geomean")
      .num(SpecGain, 4)
      .key("irregular_pdf_gain_geomean")
      .num(IrrGain, 4)
      .endObject();
  if (FILE *F = std::fopen(OutPath.c_str(), "w")) {
    std::fputs(Json.take().c_str(), F);
    std::fclose(F);
    std::printf("wrote %s\n", OutPath.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", OutPath.c_str());
  }

  return runRegisteredBenchmarks(RestArgc, Rest.data());
}
