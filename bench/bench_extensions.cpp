//===- bench/bench_extensions.cpp - Beyond-the-paper stages -----------------===//
///
/// The two production stages this repository adds around the paper's
/// pipeline: leaf-function inlining (unlocks renaming/pipelining of
/// call-bearing hot loops) and linear-scan register allocation (the stage
/// the paper's techniques explicitly precede). Reported per workload:
/// cycles for vliw, vliw+inline, and vliw+inline+regalloc.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "opt/RegAlloc.h"

using namespace vsc;

static void BM_InlineAllocCompile(benchmark::State &State) {
  const Workload &W = specWorkloads()[5]; // gcc: call-heavy
  for (auto _ : State) {
    auto M = buildWorkload(W);
    PipelineOptions Opts;
    Opts.Inlining = true;
    Opts.AllocateRegisters = true;
    optimize(*M, OptLevel::Vliw, Opts);
    benchmark::DoNotOptimize(M->instrCount());
  }
  State.SetLabel("gcc");
}
BENCHMARK(BM_InlineAllocCompile)->Unit(benchmark::kMillisecond);

int main(int Argc, char **Argv) {
  MachineModel Machine = rs6000();
  std::printf("Extensions: inlining and register allocation on top of the "
              "VLIW pipeline\n");
  std::printf("%-10s %12s %12s %14s %8s %8s\n", "Benchmark", "vliw",
              "+inline", "+inl+regalloc", "spills", "crleft");
  for (const Workload &W : specWorkloads()) {
    auto Plain = buildAt(W, OptLevel::Vliw, Machine);
    RunResult RP = runRef(*Plain, W, Machine);

    auto Inl = buildWorkload(W);
    PipelineOptions OptsI;
    OptsI.Machine = Machine;
    OptsI.Inlining = true;
    optimize(*Inl, OptLevel::Vliw, OptsI);
    RunResult RI = runRef(*Inl, W, Machine);
    checkSame(RP, RI, W.Name.c_str());

    auto Full = buildWorkload(W);
    PipelineOptions OptsF;
    OptsF.Machine = Machine;
    OptsF.Inlining = true;
    OptsF.AllocateRegisters = true;
    optimize(*Full, OptLevel::Vliw, OptsF);
    RunResult RF = runRef(*Full, W, Machine);
    checkSame(RP, RF, W.Name.c_str());

    // Allocation stats, recomputed on a fresh copy for reporting.
    RegAllocStats Stats;
    {
      auto M = buildWorkload(W);
      PipelineOptions O;
      O.Machine = Machine;
      O.Inlining = true;
      O.InsertPrologs = false;
      optimize(*M, OptLevel::Vliw, O);
      for (auto &F : M->functions())
        allocateRegisters(*F, &Stats);
    }

    std::printf("%-10s %12llu %12llu %14llu %8u %8u\n", W.Name.c_str(),
                static_cast<unsigned long long>(RP.Cycles),
                static_cast<unsigned long long>(RI.Cycles),
                static_cast<unsigned long long>(RF.Cycles), Stats.Spilled,
                Stats.CrUnassigned);
  }
  std::printf("(inlining exposes call-bearing loops to the paper's "
              "schedulers; allocation adds\nspill/prolog traffic — the "
              "cost the paper's pre-allocation measurements avoid)\n\n");
  return runRegisteredBenchmarks(Argc, Argv);
}
