//===- bench/bench_specint_table.cpp - Experiment E1 ------------------------===//
///
/// Regenerates the paper's "SPECint92 Measurements" table: per benchmark,
/// the baseline ("xlc", classical optimization) against the VLIW
/// prototype, plus the geometric-mean summary line. The paper reports
/// wall-clock times and SPECmarks on an RS/6000-580; our stand-ins are
/// simulated cycles on the rs6000 model and a pseudo-SPECmark defined as
/// 1e9/cycles (a rate, so higher is better and the geometric mean works
/// the same way). Expected shape: every benchmark improves; overall gain
/// in the low tens of percent (paper: ~13%).
///
/// The table runs over the full kernel registry — the six SPECint92
/// substitutes first (their geomean is the paper-comparable SPECint92
/// line), then the five irregular kernels with their own summary line.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace vsc;

static void BM_SimulateVliw(benchmark::State &State) {
  const Workload &W =
      workloads::allKernels()[static_cast<size_t>(State.range(0))];
  auto M = buildAt(W, OptLevel::Vliw, rs6000());
  for (auto _ : State) {
    RunResult R = runRef(*M, W, rs6000());
    benchmark::DoNotOptimize(R.Cycles);
  }
  State.SetLabel(W.Name);
}
BENCHMARK(BM_SimulateVliw)
    ->DenseRange(0, static_cast<int>(workloads::allKernels().size()) - 1);

int main(int Argc, char **Argv) {
  MachineModel Machine = rs6000();
  std::printf("SPECint92-substitute measurements (rs6000 model, cycles; "
              "pseudo-SPECmark = 1e9/cycles)\n");
  std::printf("%-10s %12s %10s %12s %10s %9s\n", "Benchmark", "xlc-cycles",
              "xlc-mark", "VLIW-cycles", "VLIW-mark", "speedup");

  std::vector<double> Speedups;
  std::vector<double> IrregularSpeedups;
  for (const Workload &W : workloads::allKernels()) {
    auto Classical = buildAt(W, OptLevel::Classical, Machine);
    auto Vliw = buildAt(W, OptLevel::Vliw, Machine);
    RunResult RC = runRef(*Classical, W, Machine);
    RunResult RV = runRef(*Vliw, W, Machine);
    checkSame(RC, RV, W.Name.c_str());
    double MarkC = 1e9 / static_cast<double>(RC.Cycles);
    double MarkV = 1e9 / static_cast<double>(RV.Cycles);
    double Speedup = static_cast<double>(RC.Cycles) /
                     static_cast<double>(RV.Cycles);
    (workloads::isIrregular(W) ? IrregularSpeedups : Speedups)
        .push_back(Speedup);
    std::printf("%-10s %12llu %10.2f %12llu %10.2f %8.1f%%\n",
                W.Name.c_str(),
                static_cast<unsigned long long>(RC.Cycles), MarkC,
                static_cast<unsigned long long>(RV.Cycles), MarkV,
                (Speedup - 1.0) * 100.0);
  }
  std::printf("%-10s %12s %10s %12s %10s %8.1f%%\n", "SPECint92", "", "",
              "", "", (geomean(Speedups) - 1.0) * 100.0);
  std::printf("%-10s %12s %10s %12s %10s %8.1f%%\n", "irregular", "", "",
              "", "", (geomean(IrregularSpeedups) - 1.0) * 100.0);
  std::printf("(paper: espresso +8.9%%, li +21%%, eqntott +27%%, compress "
              "+12%%, sc +11%%, gcc +1.5%%; geometric mean about +13%%; "
              "irregular kernels are not in the paper's table)\n\n");

  return runRegisteredBenchmarks(Argc, Argv);
}
