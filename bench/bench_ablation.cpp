//===- bench/bench_ablation.cpp - Experiment A1 --------------------------------===//
///
/// Ablation study backing the paper's synergy claim ("Each component by
/// itself contributes a small portion of the overall performance
/// improvement. But, the synergy among them results in significant
/// gains"): the full VLIW pipeline versus the pipeline with each technique
/// disabled, geomean over the six workloads.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace vsc;

namespace {

struct Knob {
  const char *Name;
  void (*Disable)(PipelineOptions &);
};

const Knob Knobs[] = {
    {"full pipeline", [](PipelineOptions &) {}},
    {"- load/store motion",
     [](PipelineOptions &O) { O.LoadStoreMotion = false; }},
    {"- unspeculation", [](PipelineOptions &O) { O.Unspeculation = false; }},
    {"- unroll+rename",
     [](PipelineOptions &O) { O.UnrollAndRename = false; }},
    {"- pipelining (EPS)", [](PipelineOptions &O) { O.Pipelining = false; }},
    {"- global scheduling",
     [](PipelineOptions &O) { O.GlobalScheduling = false; }},
    {"- limited combining", [](PipelineOptions &O) { O.Combining = false; }},
    {"- block expansion",
     [](PipelineOptions &O) { O.BlockExpansion = false; }},
    {"- tailored prologs",
     [](PipelineOptions &O) { O.TailorProlog = false; }},
};

} // namespace

static void BM_FullPipelineCompile(benchmark::State &State) {
  for (auto _ : State) {
    auto M = buildWorkload(specWorkloads()[1]);
    optimize(*M, OptLevel::Vliw);
    benchmark::DoNotOptimize(M->instrCount());
  }
  State.SetLabel("li");
}
BENCHMARK(BM_FullPipelineCompile)->Unit(benchmark::kMillisecond);

int main(int Argc, char **Argv) {
  MachineModel Machine = rs6000();

  // Baseline: classical cycles per workload.
  std::vector<uint64_t> ClassicalCycles;
  std::vector<RunResult> ClassicalRuns;
  for (const Workload &W : specWorkloads()) {
    auto M = buildAt(W, OptLevel::Classical, Machine);
    ClassicalRuns.push_back(runRef(*M, W, Machine));
    ClassicalCycles.push_back(ClassicalRuns.back().Cycles);
  }

  std::printf("Ablation: geomean speedup over classical when one technique "
              "is disabled\n");
  std::printf("%-22s %10s\n", "configuration", "speedup");
  for (const Knob &K : Knobs) {
    std::vector<double> Speedups;
    for (size_t I = 0; I != specWorkloads().size(); ++I) {
      const Workload &W = specWorkloads()[I];
      auto M = buildWorkload(W);
      PipelineOptions Opts;
      Opts.Machine = Machine;
      K.Disable(Opts);
      optimize(*M, OptLevel::Vliw, Opts);
      RunResult R = runRef(*M, W, Machine);
      checkSame(ClassicalRuns[I], R, K.Name);
      Speedups.push_back(static_cast<double>(ClassicalCycles[I]) /
                         static_cast<double>(R.Cycles));
    }
    std::printf("%-22s %9.1f%%\n", K.Name,
                (geomean(Speedups) - 1.0) * 100.0);
  }
  std::printf("\n");
  return runRegisteredBenchmarks(Argc, Argv);
}
