//===- bench/bench_li_pipeline.cpp - Experiment E2 ---------------------------===//
///
/// Regenerates the paper's worked xlygetvalue figure: the SPEC li inner
/// loop at each compilation stage. Paper: 11 cycles/iteration original,
/// 14 cycles per 2 iterations after unroll+rename+global scheduling, 10
/// cycles per 2 iterations with software pipelining.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "cfg/CfgEdit.h"
#include "vliw/Rename.h"
#include "vliw/Schedule.h"
#include "vliw/Unroll.h"
#include "workloads/LiKernel.h"

using namespace vsc;

namespace {

double cyclesPerIter(void (*Apply)(Module &)) {
  auto M1 = buildLiSearch(64);
  auto M2 = buildLiSearch(128);
  Apply(*M1);
  Apply(*M2);
  RunResult R1 = simulate(*M1, rs6000());
  RunResult R2 = simulate(*M2, rs6000());
  if (R1.Trapped || R2.Trapped || R1.Output != "1\n" ||
      R2.Output != "1\n") {
    std::fprintf(stderr, "li pipeline stage broke the kernel\n");
    std::abort();
  }
  return static_cast<double>(R2.Cycles - R1.Cycles) / 64.0;
}

void stageOriginal(Module &) {}

void stageGlobalSched(Module &M) {
  Function &F = *M.findFunction("xlygetvalue");
  globalSchedule(F, rs6000(), M);
  straighten(F);
}

void stageUnrollRename(Module &M) {
  Function &F = *M.findFunction("xlygetvalue");
  unrollInnermostLoops(F, 2);
  straighten(F);
  renameInnermostLoops(F);
  globalSchedule(F, rs6000(), M);
  straighten(F);
}

void stageEps(Module &M) {
  Function &F = *M.findFunction("xlygetvalue");
  unrollInnermostLoops(F, 2);
  straighten(F);
  renameInnermostLoops(F);
  pipelineInnermostLoops(F, rs6000(), M);
  globalSchedule(F, rs6000(), M);
  straighten(F);
}

} // namespace

static void BM_LiFullPipeline(benchmark::State &State) {
  for (auto _ : State) {
    auto M = buildLiSearch(128);
    stageEps(*M);
    RunResult R = simulate(*M, rs6000());
    benchmark::DoNotOptimize(R.Cycles);
  }
}
BENCHMARK(BM_LiFullPipeline);

int main(int Argc, char **Argv) {
  std::printf("xlygetvalue staged compilation (rs6000 model)\n");
  std::printf("%-34s %14s %14s\n", "stage", "cycles/iter", "paper");
  std::printf("%-34s %14.2f %14s\n", "original", cyclesPerIter(stageOriginal),
              "11");
  std::printf("%-34s %14.2f %14s\n", "global scheduling",
              cyclesPerIter(stageGlobalSched), "(14/2 = 7)");
  std::printf("%-34s %14.2f %14s\n", "unroll+rename+global sched",
              cyclesPerIter(stageUnrollRename), "(14/2 = 7)");
  std::printf("%-34s %14.2f %14s\n", "+ software pipelining (EPS)",
              cyclesPerIter(stageEps), "(10/2 = 5)");
  std::printf("\n");
  return runRegisteredBenchmarks(Argc, Argv);
}
