//===- bench/bench_compile_time.cpp - Experiment E3 ---------------------------===//
///
/// The paper quotes "an average compile time increase of 36%" for the VLIW
/// pipeline over -O, dominated by VLIW scheduling. This bench measures
/// wall-clock optimize() time per workload at each level, reports the
/// analysis-cache hit rate the pass manager achieves, and sweeps the
/// parallel driver's thread count over the whole six-kernel module set,
/// writing the sweep as BENCH_compile_parallel.json (override the path
/// with --parallel-out=FILE).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <chrono>
#include <cstring>
#include <thread>

using namespace vsc;

namespace {

double compileSeconds(const Workload &W, OptLevel L, int Reps = 5,
                      unsigned Threads = 1,
                      PipelineStats *Stats = nullptr) {
  using Clock = std::chrono::steady_clock;
  double Best = 1e30;
  for (int R = 0; R != Reps; ++R) {
    auto M = buildWorkload(W);
    PipelineOptions Opts;
    Opts.Threads = Threads;
    if (R == 0)
      Opts.Stats = Stats; // hit counts are deterministic; record once
    auto T0 = Clock::now();
    optimize(*M, L, Opts);
    auto T1 = Clock::now();
    Best = std::min(Best,
                    std::chrono::duration<double>(T1 - T0).count());
  }
  return Best;
}

/// One full compile of every kernel at the given thread count.
double compileAllSeconds(OptLevel L, unsigned Threads, int Reps = 3) {
  using Clock = std::chrono::steady_clock;
  double Best = 1e30;
  for (int R = 0; R != Reps; ++R) {
    std::vector<std::unique_ptr<Module>> Ms;
    for (const Workload &W : specWorkloads())
      Ms.push_back(buildWorkload(W));
    PipelineOptions Opts;
    Opts.Threads = Threads;
    auto T0 = Clock::now();
    for (auto &M : Ms)
      optimize(*M, L, Opts);
    auto T1 = Clock::now();
    Best = std::min(Best,
                    std::chrono::duration<double>(T1 - T0).count());
  }
  return Best;
}

void threadSweep(const std::string &OutPath) {
  std::printf("Parallel driver thread sweep (all six kernels, VLIW, best "
              "of 3; host has %u core(s))\n",
              std::thread::hardware_concurrency());
  std::printf("%-10s %14s %10s\n", "threads", "total(ms)", "speedup");
  const unsigned Counts[] = {1, 2, 4};
  double Base = 0;
  std::string Json = "{\n  \"bench\": \"compile_parallel\",\n"
                     "  \"host_cores\": " +
                     std::to_string(std::thread::hardware_concurrency()) +
                     ",\n  \"sweep\": [\n";
  for (size_t I = 0; I != 3; ++I) {
    unsigned T = Counts[I];
    double S = compileAllSeconds(OptLevel::Vliw, T);
    if (T == 1)
      Base = S;
    std::printf("%-10u %14.2f %9.2fx\n", T, S * 1e3, Base / S);
    char Buf[160];
    std::snprintf(Buf, sizeof(Buf),
                  "    {\"threads\": %u, \"seconds\": %.6f, "
                  "\"speedup\": %.3f}%s\n",
                  T, S, Base / S, I + 1 != 3 ? "," : "");
    Json += Buf;
  }
  Json += "  ]\n}\n";
  if (FILE *F = std::fopen(OutPath.c_str(), "w")) {
    std::fputs(Json.c_str(), F);
    std::fclose(F);
    std::printf("wrote %s\n\n", OutPath.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", OutPath.c_str());
  }
}

} // namespace

static void BM_CompileVliw(benchmark::State &State) {
  const Workload &W = specWorkloads()[static_cast<size_t>(State.range(0))];
  for (auto _ : State) {
    auto M = buildWorkload(W);
    optimize(*M, OptLevel::Vliw);
    benchmark::DoNotOptimize(M->instrCount());
  }
  State.SetLabel(W.Name);
}
BENCHMARK(BM_CompileVliw)->DenseRange(0, 5)
    ->Unit(benchmark::kMillisecond);

int main(int Argc, char **Argv) {
  // Peel off --parallel-out=FILE before google-benchmark sees the args.
  std::string OutPath = "BENCH_compile_parallel.json";
  std::vector<char *> Rest;
  for (int I = 0; I != Argc; ++I) {
    if (std::strncmp(Argv[I], "--parallel-out=", 15) == 0)
      OutPath = Argv[I] + 15;
    else
      Rest.push_back(Argv[I]);
  }
  int RestArgc = static_cast<int>(Rest.size());

  std::printf("Compile time: classical vs VLIW pipeline (best of 5)\n");
  std::printf("%-10s %14s %14s %10s %10s\n", "Benchmark", "classical(ms)",
              "vliw(ms)", "increase", "cache-hit");
  std::vector<double> Ratios;
  for (const Workload &W : specWorkloads()) {
    double C = compileSeconds(W, OptLevel::Classical);
    PipelineStats Stats;
    double V = compileSeconds(W, OptLevel::Vliw, 5, 1, &Stats);
    Ratios.push_back(V / C);
    double Queries =
        static_cast<double>(Stats.AnalysisHits + Stats.AnalysisMisses);
    std::printf("%-10s %14.2f %14.2f %9.0f%% %9.0f%%\n", W.Name.c_str(),
                C * 1e3, V * 1e3, (V / C - 1.0) * 100.0,
                Queries ? 100.0 * static_cast<double>(Stats.AnalysisHits) /
                              Queries
                        : 0.0);
  }
  std::printf("%-10s %14s %14s %9.0f%%   (paper: +36%%)\n\n", "geomean", "",
              "", (geomean(Ratios) - 1.0) * 100.0);

  threadSweep(OutPath);
  return runRegisteredBenchmarks(RestArgc, Rest.data());
}
