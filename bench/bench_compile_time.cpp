//===- bench/bench_compile_time.cpp - Experiment E3 ---------------------------===//
///
/// The paper quotes "an average compile time increase of 36%" for the VLIW
/// pipeline over -O, dominated by VLIW scheduling. This bench measures
/// wall-clock optimize() time per workload at each level.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <chrono>

using namespace vsc;

namespace {

double compileSeconds(const Workload &W, OptLevel L, int Reps = 5) {
  using Clock = std::chrono::steady_clock;
  double Best = 1e30;
  for (int R = 0; R != Reps; ++R) {
    auto M = buildWorkload(W);
    auto T0 = Clock::now();
    optimize(*M, L);
    auto T1 = Clock::now();
    Best = std::min(Best,
                    std::chrono::duration<double>(T1 - T0).count());
  }
  return Best;
}

} // namespace

static void BM_CompileVliw(benchmark::State &State) {
  const Workload &W = specWorkloads()[static_cast<size_t>(State.range(0))];
  for (auto _ : State) {
    auto M = buildWorkload(W);
    optimize(*M, OptLevel::Vliw);
    benchmark::DoNotOptimize(M->instrCount());
  }
  State.SetLabel(W.Name);
}
BENCHMARK(BM_CompileVliw)->DenseRange(0, 5)
    ->Unit(benchmark::kMillisecond);

int main(int Argc, char **Argv) {
  std::printf("Compile time: classical vs VLIW pipeline (best of 5)\n");
  std::printf("%-10s %14s %14s %10s\n", "Benchmark", "classical(ms)",
              "vliw(ms)", "increase");
  std::vector<double> Ratios;
  for (const Workload &W : specWorkloads()) {
    double C = compileSeconds(W, OptLevel::Classical);
    double V = compileSeconds(W, OptLevel::Vliw);
    Ratios.push_back(V / C);
    std::printf("%-10s %14.2f %14.2f %9.0f%%\n", W.Name.c_str(), C * 1e3,
                V * 1e3, (V / C - 1.0) * 100.0);
  }
  std::printf("%-10s %14s %14s %9.0f%%   (paper: +36%%)\n\n", "geomean", "",
              "", (geomean(Ratios) - 1.0) * 100.0);
  return runRegisteredBenchmarks(Argc, Argv);
}
