//===- bench/bench_service.cpp - Compile-service throughput ------------------===//
///
/// Cold vs warm cache throughput of the compile service: a seeded,
/// shuffled request stream (compile / simulate / pdf over every registry
/// kernel, two machine models, duplicated so same-module batching has
/// work to do) is served twice by one service — the first pass computes
/// every artifact, the second is pure cache traffic. The bench asserts
/// the two response streams are byte-identical (the service's core
/// contract) and that the warm pass clears the 3x throughput floor, then
/// writes BENCH_service.json (override with --service-out=FILE) with the
/// cold/warm requests-per-second and the per-class hit rates.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "service/CompileService.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <random>

using namespace vsc;

static std::vector<ServiceRequest> buildStream() {
  std::vector<ServiceRequest> Reqs;
  const char *MachineNames[] = {"rs6000", "ppc601"};
  for (const Workload &W : workloads::allKernels()) {
    for (const char *MN : MachineNames) {
      ServiceRequest C;
      C.Kind = ServiceRequest::Op::Compile;
      C.Kernel = W.Name;
      C.MachineName = MN;
      C.Level = OptLevel::Classical;
      Reqs.push_back(C);
      C.Level = OptLevel::Vliw;
      Reqs.push_back(C);

      ServiceRequest S;
      S.Kind = ServiceRequest::Op::Simulate;
      S.Kernel = W.Name;
      S.MachineName = MN;
      S.Args = {W.TrainScale};
      Reqs.push_back(S);
    }
    ServiceRequest P;
    P.Kind = ServiceRequest::Op::Pdf;
    P.Kernel = W.Name;
    P.Train = {W.TrainScale};
    P.Test = {W.TrainScale};
    Reqs.push_back(P);
  }
  // Duplicate the stream so same-module batching has repeats to absorb
  // even on the cold pass, then shuffle with a fixed seed.
  std::vector<ServiceRequest> Doubled = Reqs;
  Doubled.insert(Doubled.end(), Reqs.begin(), Reqs.end());
  std::mt19937 Rng(0x5eedULL);
  std::shuffle(Doubled.begin(), Doubled.end(), Rng);
  for (size_t I = 0; I != Doubled.size(); ++I)
    Doubled[I].Name = "q" + std::to_string(I);
  return Doubled;
}

int main(int Argc, char **Argv) {
  std::string OutPath = "BENCH_service.json";
  for (int I = 1; I < Argc; ++I)
    if (std::strncmp(Argv[I], "--service-out=", 14) == 0)
      OutPath = Argv[I] + 14;

  std::vector<ServiceRequest> Stream = buildStream();
  CompileService::Config Cfg;
  CompileService Service(Cfg);
  unsigned Threads = Cfg.Threads ? Cfg.Threads
                                 : ThreadPool::defaultThreadCount();

  using Clock = std::chrono::steady_clock;
  auto T0 = Clock::now();
  std::vector<ServiceResponse> Cold = Service.handleBatch(Stream);
  auto T1 = Clock::now();
  std::vector<ServiceResponse> Warm = Service.handleBatch(Stream);
  auto T2 = Clock::now();

  for (size_t I = 0; I != Cold.size(); ++I) {
    if (!Cold[I].Ok) {
      std::fprintf(stderr, "request %s failed: %s\n",
                   Cold[I].Name.c_str(), Cold[I].Text.c_str());
      std::abort();
    }
    if (Cold[I].Text != Warm[I].Text || Cold[I].Name != Warm[I].Name) {
      std::fprintf(stderr,
                   "cold/warm divergence on %s:\n  cold: %s\n  warm: %s\n",
                   Cold[I].Name.c_str(), Cold[I].Text.c_str(),
                   Warm[I].Text.c_str());
      std::abort();
    }
  }

  auto Secs = [](Clock::time_point A, Clock::time_point B) {
    return std::chrono::duration<double>(B - A).count();
  };
  double ColdSecs = Secs(T0, T1), WarmSecs = Secs(T1, T2);
  double N = static_cast<double>(Stream.size());
  double ColdRps = N / ColdSecs, WarmRps = N / WarmSecs;
  double Speedup = WarmRps / ColdRps;

  std::printf("Compile service: %zu requests, %u worker threads\n",
              Stream.size(), Threads);
  std::printf("%-6s %10s %12s\n", "pass", "seconds", "requests/s");
  std::printf("%-6s %10.3f %12.1f\n", "cold", ColdSecs, ColdRps);
  std::printf("%-6s %10.3f %12.1f\n", "warm", WarmSecs, WarmRps);
  std::printf("warm/cold throughput: %.1fx (responses byte-identical)\n\n",
              Speedup);

  std::printf("%-12s %8s %8s %8s %8s %9s\n", "class", "hits", "misses",
              "evicted", "rejected", "hit-rate");
  JsonWriter Json;
  Json.beginObject()
      .key("bench")
      .str("service")
      .key("requests")
      .num(static_cast<uint64_t>(Stream.size()))
      .key("threads")
      .num(Threads)
      .key("cold_seconds")
      .num(ColdSecs, 6)
      .key("warm_seconds")
      .num(WarmSecs, 6)
      .key("cold_rps")
      .num(ColdRps, 1)
      .key("warm_rps")
      .num(WarmRps, 1)
      .key("warm_speedup")
      .num(Speedup, 2)
      .key("byte_identical")
      .boolean(true)
      .key("classes")
      .beginArray();
  const ArtifactCache &C = Service.cache();
  for (size_t I = 0; I != static_cast<size_t>(ArtifactClass::NumClasses);
       ++I) {
    ArtifactClass AC = static_cast<ArtifactClass>(I);
    ArtifactClassStats S = C.stats(AC);
    if (!S.Hits && !S.Misses)
      continue;
    double Rate = static_cast<double>(S.Hits) /
                  static_cast<double>(S.Hits + S.Misses);
    std::printf("%-12s %8llu %8llu %8llu %8llu %8.1f%%\n",
                artifactClassName(AC),
                static_cast<unsigned long long>(S.Hits),
                static_cast<unsigned long long>(S.Misses),
                static_cast<unsigned long long>(S.Evictions),
                static_cast<unsigned long long>(S.Rejections),
                Rate * 100.0);
    Json.beginObject()
        .key("class")
        .str(artifactClassName(AC))
        .key("hits")
        .num(S.Hits)
        .key("misses")
        .num(S.Misses)
        .key("evictions")
        .num(S.Evictions)
        .key("rejections")
        .num(S.Rejections)
        .key("hit_rate")
        .num(Rate, 4)
        .endObject();
  }
  Json.endArray().endObject();

  if (FILE *F = std::fopen(OutPath.c_str(), "w")) {
    std::fputs(Json.take().c_str(), F);
    std::fclose(F);
    std::printf("wrote %s\n", OutPath.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", OutPath.c_str());
  }

  if (Speedup < 3.0) {
    std::fprintf(stderr,
                 "warm cache only %.2fx cold throughput (floor: 3x)\n",
                 Speedup);
    std::abort();
  }
  return 0;
}
