//===- bench/bench_sim.cpp - Predecoded simulator speedup --------------------===//
///
/// Measures the predecoded fast path (SimEngine, the engine behind
/// vsc::simulate) against the original walking interpreter
/// (vsc::simulateLegacy) on the six kernels at the VLIW level, reference
/// inputs. Both compiled dispatch flavours (portable switch and, when
/// VSC_COMPUTED_GOTO is on, computed-goto threaded) are timed per kernel;
/// the headline speedup uses whichever flavour a default run would pick.
/// Reports per-kernel wall-clock, the one-time predecode cost, and the
/// geomean speedup; writes the table as BENCH_sim.json (override the path
/// with --sim-out=FILE). Every timed pair is fingerprint-checked in every
/// dispatch mode — a fast path that diverges aborts instead of reporting
/// numbers.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <chrono>
#include <cstring>

using namespace vsc;

namespace {

using Clock = std::chrono::steady_clock;

double seconds(Clock::time_point T0, Clock::time_point T1) {
  return std::chrono::duration<double>(T1 - T0).count();
}

template <typename Fn> double bestOf(int Reps, Fn &&F) {
  double Best = 1e30;
  for (int R = 0; R != Reps; ++R) {
    auto T0 = Clock::now();
    F();
    auto T1 = Clock::now();
    Best = std::min(Best, seconds(T0, T1));
  }
  return Best;
}

} // namespace

static void BM_SimFast(benchmark::State &State) {
  const Workload &W = specWorkloads()[static_cast<size_t>(State.range(0))];
  auto M = buildAt(W, OptLevel::Vliw, rs6000());
  SimEngine E(*M, rs6000());
  RunOptions In = workloadInput(W.RefScale);
  for (auto _ : State)
    benchmark::DoNotOptimize(E.run(In).Cycles);
  State.SetLabel(W.Name);
}
BENCHMARK(BM_SimFast)->DenseRange(0, 5)->Unit(benchmark::kMillisecond);

int main(int Argc, char **Argv) {
  // Peel off --sim-out=FILE before google-benchmark sees the args.
  std::string OutPath = "BENCH_sim.json";
  std::vector<char *> Rest;
  for (int I = 0; I != Argc; ++I) {
    if (std::strncmp(Argv[I], "--sim-out=", 10) == 0)
      OutPath = Argv[I] + 10;
    else
      Rest.push_back(Argv[I]);
  }
  int RestArgc = static_cast<int>(Rest.size());

  const bool HaveThreaded = threadedDispatchAvailable();
  std::printf("Simulator: legacy walking interpreter vs predecoded fast "
              "path (VLIW level, ref inputs, best of 5)\n");
  std::printf("default dispatch: %s\n",
              dispatchModeName(DispatchMode::Default));
  std::printf("%-10s %14s %12s %12s %12s %9s %12s\n", "Benchmark",
              "dyn.instrs", "legacy(ms)", "switch(ms)", "threaded(ms)",
              "speedup", "predecode(ms)");

  std::vector<double> Speedups;
  JsonWriter Json;
  Json.beginObject().key("bench").str("sim").key("kernels").beginArray();
  const auto &Ws = specWorkloads();
  for (size_t I = 0; I != Ws.size(); ++I) {
    const Workload &W = Ws[I];
    auto M = buildAt(W, OptLevel::Vliw, rs6000());
    RunOptions In = workloadInput(W.RefScale);

    double Predecode = bestOf(3, [&] {
      SimEngine E(*M, rs6000());
      benchmark::DoNotOptimize(&E.image());
    });

    SimEngine E(*M, rs6000());
    RunOptions InSwitch = In;
    InSwitch.Dispatch = DispatchMode::Switch;
    RunOptions InThreaded = In;
    InThreaded.Dispatch = DispatchMode::Threaded;

    RunResult RLegacy = simulateLegacy(*M, rs6000(), In);
    checkSame(RLegacy, E.run(InSwitch), W.Name.c_str());
    if (HaveThreaded)
      checkSame(RLegacy, E.run(InThreaded), W.Name.c_str());

    double Legacy =
        bestOf(5, [&] { benchmark::DoNotOptimize(
                            simulateLegacy(*M, rs6000(), In).Cycles); });
    double Switch =
        bestOf(5, [&] { benchmark::DoNotOptimize(E.run(InSwitch).Cycles); });
    double Threaded =
        HaveThreaded
            ? bestOf(5,
                     [&] { benchmark::DoNotOptimize(E.run(InThreaded).Cycles); })
            : 0.0;
    // Headline "fast" is whatever a default-mode run would execute.
    double Fast = (resolveDispatchMode(DispatchMode::Default) ==
                   DispatchMode::Threaded)
                      ? Threaded
                      : Switch;
    double Speedup = Legacy / Fast;
    Speedups.push_back(Speedup);

    char ThreadedCol[32];
    if (HaveThreaded)
      std::snprintf(ThreadedCol, sizeof(ThreadedCol), "%.2f", Threaded * 1e3);
    else
      std::snprintf(ThreadedCol, sizeof(ThreadedCol), "n/a");
    std::printf("%-10s %14llu %12.2f %12.2f %12s %8.2fx %12.3f\n",
                W.Name.c_str(),
                static_cast<unsigned long long>(RLegacy.DynInstrs),
                Legacy * 1e3, Switch * 1e3, ThreadedCol, Speedup,
                Predecode * 1e3);

    Json.beginObject()
        .key("name")
        .str(W.Name)
        .key("dyn_instrs")
        .num(RLegacy.DynInstrs)
        .key("legacy_seconds")
        .num(Legacy, 6)
        .key("fast_switch_seconds")
        .num(Switch, 6);
    if (HaveThreaded)
      Json.key("fast_threaded_seconds").num(Threaded, 6);
    Json.key("fast_seconds")
        .num(Fast, 6)
        .key("speedup")
        .num(Speedup, 3)
        .key("predecode_seconds")
        .num(Predecode, 6)
        .endObject();
  }
  double Geomean = geomean(Speedups);
  std::printf("%-10s %14s %12s %12s %12s %8.2fx\n\n", "geomean", "", "", "",
              "", Geomean);

  Json.endArray()
      .key("dispatch")
      .str(dispatchModeName(DispatchMode::Default))
      .key("geomean_speedup")
      .num(Geomean, 3)
      .endObject();
  if (FILE *F = std::fopen(OutPath.c_str(), "w")) {
    std::fputs(Json.take().c_str(), F);
    std::fclose(F);
    std::printf("wrote %s\n\n", OutPath.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", OutPath.c_str());
  }

  return runRegisteredBenchmarks(RestArgc, Rest.data());
}
