//===- bench/bench_branch_reversal.cpp - Experiment E12 -----------------------===//
///
/// PDF block reordering + branch reversal: sweeping the taken-probability
/// of a conditional branch, with and without profile-directed layout. The
/// paper: most Power hardware works better when conditional branches fall
/// through most of the time.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "ir/Parser.h"
#include "profile/PdfLayout.h"

using namespace vsc;

namespace {

/// Loop whose conditional branch is taken with probability Taken/128.
std::unique_ptr<Module> buildSkewed(unsigned Trips, unsigned Taken) {
  std::string Text = "func main(0) {\nentry:\n  LI r30 = " +
                     std::to_string(Trips) + "\n  MTCTR r30\n  LI r31 = 0\n" +
                     "  LI r33 = 0\nloop:\n  AI r31 = r31, 1\n" +
                     "  ANDI r32 = r31, 127\n  CI cr0 = r32, " +
                     std::to_string(Taken) + "\n" + R"(  BT hot, cr0.lt
cold:
  AI r33 = r33, 100
  B next
hot:
  AI r33 = r33, 1
next:
  BCT loop
exit:
  LR r3 = r33
  CALL print_int, 1
  RET
}
)";
  std::string Err;
  auto M = parseModule(Text, &Err);
  assert(M && "kernel must parse");
  return M;
}

} // namespace

static void BM_ReorderPass(benchmark::State &State) {
  for (auto _ : State) {
    auto M = buildSkewed(200, 96);
    RunResult Ground = simulate(*M, rs6000());
    ProfileData P = ProfileData::fromRun(Ground);
    auto M2 = buildSkewed(200, 96);
    pdfReorderBlocks(*M2->findFunction("main"), P);
    pdfReverseBranches(*M2->findFunction("main"), P, rs6000());
    benchmark::DoNotOptimize(M2->instrCount());
  }
}
BENCHMARK(BM_ReorderPass);

int main(int Argc, char **Argv) {
  std::printf("PDF block reordering + branch reversal (taken-probability "
              "sweep, 20000 trips)\n");
  std::printf("%12s %14s %14s %9s\n", "P(taken)", "cycles-before",
              "cycles-after", "gain");
  for (unsigned Taken : {16u, 64u, 96u, 120u}) {
    auto Before = buildSkewed(20000, Taken);
    RunResult RB = simulate(*Before, rs6000());
    ProfileData P = ProfileData::fromRun(RB);
    auto After = buildSkewed(20000, Taken);
    Function &F = *After->findFunction("main");
    pdfReorderBlocks(F, P);
    pdfReverseBranches(F, P, rs6000());
    RunResult RA = simulate(*After, rs6000());
    checkSame(RB, RA, "skewed kernel");
    std::printf("%9u/128 %14llu %14llu %8.1f%%\n", Taken,
                static_cast<unsigned long long>(RB.Cycles),
                static_cast<unsigned long long>(RA.Cycles),
                (static_cast<double>(RB.Cycles) / RA.Cycles - 1.0) * 100.0);
  }
  std::printf("(the hot successor becomes the fallthrough; "
              "mostly-taken branches are reversed)\n\n");
  return runRegisteredBenchmarks(Argc, Argv);
}
