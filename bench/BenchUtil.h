//===- bench/BenchUtil.h - Shared benchmark plumbing ----------*- C++ -*-===//
///
/// \file
/// Helpers shared by the per-experiment benchmark binaries. Each binary
/// prints its paper-style table first, then runs any registered
/// google-benchmark timings (which measure the host-side cost of
/// simulation/compilation — useful for tracking this repository itself).
///
//===----------------------------------------------------------------------===//

#ifndef VSC_BENCH_BENCHUTIL_H
#define VSC_BENCH_BENCHUTIL_H

#include "profile/Counters.h"
#include "sim/Simulator.h"
#include "support/Json.h" // JsonWriter, for the BENCH_*.json emitters
#include "vliw/Pipeline.h"
#include "workloads/Registry.h"

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

namespace vsc {

/// Builds workload \p W at \p L (optionally profile-guided with the
/// workload's training input).
inline std::unique_ptr<Module>
buildAt(const Workload &W, OptLevel L, const MachineModel &Machine,
        bool WithPdf = false, ProfileData *ProfileStorage = nullptr) {
  auto M = buildWorkload(W);
  PipelineOptions Opts;
  Opts.Machine = Machine;
  RunOptions TrainInput = workloadInput(W.TrainScale);
  if (WithPdf) {
    auto Train = buildWorkload(W);
    assert(ProfileStorage && "PDF needs profile storage");
    *ProfileStorage = collectProfile(*Train, *M, Machine, TrainInput);
    Opts.Profile = ProfileStorage;
    Opts.TrainInput = &TrainInput; // measured layout gate
  }
  optimize(*M, L, Opts);
  return M;
}

/// Simulates \p M on the workload's reference input.
inline RunResult runRef(const Module &M, const Workload &W,
                        const MachineModel &Machine) {
  return simulate(M, Machine, workloadInput(W.RefScale));
}

/// Aborts loudly when two runs diverge (benchmarks must never report
/// numbers from broken transformations).
inline void checkSame(const RunResult &A, const RunResult &B,
                      const char *What) {
  if (A.fingerprint() != B.fingerprint()) {
    std::fprintf(stderr, "BEHAVIOUR MISMATCH in %s:\n  %s\n  %s\n", What,
                 A.fingerprint().c_str(), B.fingerprint().c_str());
    std::abort();
  }
}

inline double geomean(const std::vector<double> &Xs) {
  double S = 0;
  for (double X : Xs)
    S += std::log(X);
  return std::exp(S / static_cast<double>(Xs.size()));
}

/// Runs google-benchmark with the binary's registered timings.
inline int runRegisteredBenchmarks(int Argc, char **Argv) {
  benchmark::Initialize(&Argc, Argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

} // namespace vsc

#endif // VSC_BENCH_BENCHUTIL_H
