//===- bench/bench_oracle_overhead.cpp - ExecOracle compile-time cost -------===//
///
/// Measures the compile-time overhead of the differential execution
/// oracle on the SPECint workload table: optimize() at OptLevel::Vliw
/// with OracleLevel::Off vs Boundaries (the level the fuzz suite runs at)
/// vs Full (a differential execution after every sub-pass). Unlike the
/// static audits, the oracle actually runs every changed function on its
/// input battery, so its cost scales with battery size and step budget —
/// the table quantifies what the translation-validation net costs when
/// left on.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <chrono>

using namespace vsc;

namespace {

double compileSeconds(const Workload &W, OracleLevel Oracle, int Reps = 5) {
  using Clock = std::chrono::steady_clock;
  double Best = 1e30;
  for (int R = 0; R != Reps; ++R) {
    auto M = buildWorkload(W);
    PipelineOptions Opts;
    Opts.Oracle = Oracle;
    auto T0 = Clock::now();
    optimize(*M, OptLevel::Vliw, Opts);
    auto T1 = Clock::now();
    Best = std::min(Best,
                    std::chrono::duration<double>(T1 - T0).count());
  }
  return Best;
}

} // namespace

static void BM_VliwOracle(benchmark::State &State) {
  const Workload &W = specWorkloads()[static_cast<size_t>(State.range(0))];
  OracleLevel Level = static_cast<OracleLevel>(State.range(1));
  for (auto _ : State) {
    auto M = buildWorkload(W);
    PipelineOptions Opts;
    Opts.Oracle = Level;
    optimize(*M, OptLevel::Vliw, Opts);
    benchmark::DoNotOptimize(M->instrCount());
  }
  State.SetLabel(W.Name + "/" + oracleLevelName(Level));
}
BENCHMARK(BM_VliwOracle)
    ->ArgsProduct({benchmark::CreateDenseRange(0, 5, 1),
                   {static_cast<long>(OracleLevel::Off),
                    static_cast<long>(OracleLevel::Boundaries),
                    static_cast<long>(OracleLevel::Full)}})
    ->Unit(benchmark::kMillisecond);

int main(int Argc, char **Argv) {
  std::printf("ExecOracle compile-time overhead on the VLIW pipeline "
              "(best of 5)\n");
  std::printf("%-10s %10s %14s %12s %10s %10s\n", "Benchmark", "off(ms)",
              "boundaries(ms)", "full(ms)", "bnd ovh", "full ovh");
  std::vector<double> BndRatios, FullRatios;
  for (const Workload &W : specWorkloads()) {
    double Off = compileSeconds(W, OracleLevel::Off);
    double Bnd = compileSeconds(W, OracleLevel::Boundaries);
    double Full = compileSeconds(W, OracleLevel::Full);
    BndRatios.push_back(Bnd / Off);
    FullRatios.push_back(Full / Off);
    std::printf("%-10s %10.2f %14.2f %12.2f %9.0f%% %9.0f%%\n",
                W.Name.c_str(), Off * 1e3, Bnd * 1e3, Full * 1e3,
                (Bnd / Off - 1.0) * 100.0, (Full / Off - 1.0) * 100.0);
  }
  std::printf("%-10s %10s %14s %12s %9.0f%% %9.0f%%\n\n", "geomean", "", "",
              "", (geomean(BndRatios) - 1.0) * 100.0,
              (geomean(FullRatios) - 1.0) * 100.0);
  return runRegisteredBenchmarks(Argc, Argv);
}
