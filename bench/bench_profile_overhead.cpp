//===- bench/bench_profile_overhead.cpp - Experiment E6 -----------------------===//
///
/// The paper's eqntott profiling example: counters on a subset of blocks
/// (BB1/BB2/BB4 inside the loop, BB7/BB8 outside), with counter loads and
/// stores moved out of the loop so in-loop overhead is one instruction per
/// counted block (vs three outside). This bench reports the counted-subset
/// size and the dynamic overhead of plain vs hoisted instrumentation on
/// every workload.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace vsc;

static void BM_InstrumentedRun(benchmark::State &State) {
  const Workload &W = specWorkloads()[2];
  auto M = buildWorkload(W);
  instrumentModule(*M, /*HoistCounters=*/true);
  SimEngine Engine(*M, rs6000()); // predecode once, like ProfileCollector
  for (auto _ : State) {
    RunResult R = Engine.run(workloadInput(W.TrainScale));
    benchmark::DoNotOptimize(R.DynInstrs);
  }
  State.SetLabel("eqntott+counters");
}
BENCHMARK(BM_InstrumentedRun)->Unit(benchmark::kMillisecond);

static void BM_CachedCollect(benchmark::State &State) {
  const Workload &W = specWorkloads()[2];
  auto M = buildWorkload(W);
  ProfileCollector Collector(*M, rs6000());
  std::vector<RunOptions> Battery;
  for (int64_t S = 1; S <= W.TrainScale; ++S)
    Battery.push_back(workloadInput(S));
  for (auto _ : State) {
    auto Counted = Collector.counts(Battery);
    benchmark::DoNotOptimize(Counted.size());
  }
  State.SetLabel("eqntott, cached instrumentation, 4-input battery");
}
BENCHMARK(BM_CachedCollect)->Unit(benchmark::kMillisecond);

int main(int Argc, char **Argv) {
  std::printf("Low-overhead profiling: counted subset and dynamic cost\n");
  std::printf("(all variants classically optimized, so overhead isolates "
              "the counting code)\n");
  std::printf("%-10s %8s %8s %12s %12s %12s\n", "Benchmark", "blocks",
              "counted", "base-dyn", "plain-dyn", "hoisted-dyn");
  for (const Workload &W : specWorkloads()) {
    auto Base = buildWorkload(W);
    size_t NumBlocks = 0;
    for (const auto &F : Base->functions())
      NumBlocks += F->size();
    optimize(*Base, OptLevel::Classical);
    RunResult RB = simulate(*Base, rs6000(), workloadInput(W.TrainScale));

    auto Plain = buildWorkload(W);
    Instrumentation IP = instrumentModule(*Plain, /*HoistCounters=*/false);
    optimize(*Plain, OptLevel::Classical);
    RunResult RP = simulate(*Plain, rs6000(), workloadInput(W.TrainScale));

    auto Hoist = buildWorkload(W);
    instrumentModule(*Hoist, /*HoistCounters=*/true);
    optimize(*Hoist, OptLevel::Classical);
    RunResult RH = simulate(*Hoist, rs6000(), workloadInput(W.TrainScale));

    if (RB.Output != RP.Output || RB.Output != RH.Output) {
      std::fprintf(stderr, "instrumentation broke %s\n", W.Name.c_str());
      std::abort();
    }
    std::printf("%-10s %8zu %8zu %12llu %12llu (+%3.0f%%) %8llu (+%3.0f%%)\n",
                W.Name.c_str(), NumBlocks, IP.SlotKeys.size(),
                static_cast<unsigned long long>(RB.DynInstrs),
                static_cast<unsigned long long>(RP.DynInstrs),
                (static_cast<double>(RP.DynInstrs) / RB.DynInstrs - 1) * 100,
                static_cast<unsigned long long>(RH.DynInstrs),
                (static_cast<double>(RH.DynInstrs) / RB.DynInstrs - 1) *
                    100);
  }
  std::printf("(paper: 1 instruction/counted block inside loops after "
              "hoisting, 3 outside)\n\n");
  return runRegisteredBenchmarks(Argc, Argv);
}
