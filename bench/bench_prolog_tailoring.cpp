//===- bench/bench_prolog_tailoring.cpp - Experiment E11 ----------------------===//
///
/// Prolog tailoring on the paper's two-branch procedure: per-path saves
/// against whole-procedure saves, across the distribution of which path
/// executes. The unwind invariant is checked on every variant.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "ir/Parser.h"
#include "vliw/PrologTailor.h"

using namespace vsc;

namespace {

/// Caller invokes the paper's `sub` Trips times; Bias selects how often
/// the r29/r31-killing side runs (percent).
std::unique_ptr<Module> buildCaller(unsigned Trips, unsigned Bias) {
  std::string Text = R"(
func sub(2) {
entry:
  CI cr0 = r3, 0
  BT L1, cr0.eq
fall:
  LI r29 = 100
  LI r31 = 200
  A r3 = r29, r31
  RET
L1:
  LI r28 = 7
  CI cr1 = r4, 0
  BT L2, cr1.eq
killr30:
  LI r30 = 50
  A r28 = r28, r30
L2:
  LR r3 = r28
  RET
}
func main(0) {
)";
  Text += "entry:\n  LI r20 = " + std::to_string(Trips) + "\n";
  Text += "  MTCTR r20\n  LI r21 = 0\n  LI r22 = 0\nloop:\n";
  Text += "  AI r21 = r21, 1\n";
  // r3 = (r21 % 100) < Bias ? 1 : 0 via masks: approximate with AND.
  Text += "  ANDI r23 = r21, 127\n  CI cr0 = r23, " +
          std::to_string((Bias * 128) / 100) + "\n";
  Text += R"(  LI r3 = 0
  BF cont, cr0.lt
fallside:
  LI r3 = 1
cont:
  ANDI r4 = r21, 1
  CALL sub, 2
  A r22 = r22, r3
  BCT loop
exit:
  LR r3 = r22
  CALL print_int, 1
  RET
}
)";
  std::string Err;
  auto M = parseModule(Text, &Err);
  assert(M && "kernel must parse");
  return M;
}

} // namespace

static void BM_TailorPass(benchmark::State &State) {
  for (auto _ : State) {
    auto M = buildCaller(10, 50);
    insertPrologEpilog(*M->findFunction("sub"), true);
    benchmark::DoNotOptimize(M->instrCount());
  }
}
BENCHMARK(BM_TailorPass);

int main(int Argc, char **Argv) {
  std::printf("Prolog tailoring on the paper's procedure (2000 calls)\n");
  std::printf("%12s %14s %14s %12s %12s\n", "bias(fall%)", "dyn-classic",
              "dyn-tailored", "cyc-classic", "cyc-tailored");
  for (unsigned Bias : {10u, 50u, 90u}) {
    auto Classic = buildCaller(2000, Bias);
    auto Tailored = buildCaller(2000, Bias);
    for (auto &F : Classic->functions())
      insertPrologEpilog(*F, false);
    for (auto &F : Tailored->functions()) {
      insertPrologEpilog(*F, true);
      std::string E = verifyUnwindInvariant(*F);
      if (!E.empty()) {
        std::fprintf(stderr, "unwind invariant: %s\n", E.c_str());
        return 1;
      }
    }
    RunResult RC = simulate(*Classic, rs6000());
    RunResult RT = simulate(*Tailored, rs6000());
    checkSame(RC, RT, "prolog kernel");
    std::printf("%12u %14llu %14llu %12llu %12llu\n", Bias,
                static_cast<unsigned long long>(RC.DynInstrs),
                static_cast<unsigned long long>(RT.DynInstrs),
                static_cast<unsigned long long>(RC.Cycles),
                static_cast<unsigned long long>(RT.Cycles));
  }
  std::printf("(tailored prologs save only the registers each path kills; "
              "the unwind invariant holds)\n\n");
  return runRegisteredBenchmarks(Argc, Argv);
}
