//===- bench/bench_audit_overhead.cpp - PassAudit compile-time cost ---------===//
///
/// Measures the compile-time overhead of the semantic pass audits on the
/// SPECint workload table: optimize() at OptLevel::Vliw with
/// AuditLevel::Off vs Boundaries (the level the fuzz suite runs at) vs
/// Full (a checkpoint after every sub-pass). The audits are a debugging /
/// CI net, so the interesting number is what Boundaries costs if left on.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <algorithm>
#include <chrono>

using namespace vsc;

namespace {

/// One audited compile of every workload at Full level, merging the
/// per-stage alias-query deltas PassAudit charged at its checkpoints.
/// Shows which passes actually consume the disambiguator and how often
/// each gets a NoAlias answer.
void printAliasQueryTable() {
  std::vector<std::pair<std::string, AliasQueryCounters>> Stages;
  for (const Workload &W : specWorkloads()) {
    auto M = buildWorkload(W);
    PipelineOptions Opts;
    Opts.Audit = AuditLevel::Full;
    PipelineStats Stats;
    Opts.Stats = &Stats;
    optimize(*M, OptLevel::Vliw, Opts);
    for (const auto &E : Stats.AliasQueriesByStage) {
      auto It = std::find_if(Stages.begin(), Stages.end(),
                             [&](const auto &S) { return S.first == E.first; });
      if (It == Stages.end()) {
        Stages.push_back(E);
      } else {
        It->second.Queries += E.second.Queries;
        It->second.NoAlias += E.second.NoAlias;
        It->second.MustAlias += E.second.MustAlias;
        It->second.MayAlias += E.second.MayAlias;
      }
    }
  }
  std::printf("Alias queries by pipeline stage (all six kernels, "
              "Full audit)\n");
  std::printf("%-16s %10s %10s %8s %8s %8s\n", "Stage", "queries",
              "noalias", "must", "may", "no%");
  uint64_t TotQ = 0, TotNo = 0;
  for (const auto &S : Stages) {
    const AliasQueryCounters &C = S.second;
    TotQ += C.Queries;
    TotNo += C.NoAlias;
    std::printf("%-16s %10llu %10llu %8llu %8llu %7.1f%%\n",
                S.first.c_str(),
                static_cast<unsigned long long>(C.Queries),
                static_cast<unsigned long long>(C.NoAlias),
                static_cast<unsigned long long>(C.MustAlias),
                static_cast<unsigned long long>(C.MayAlias),
                C.Queries ? 100.0 * static_cast<double>(C.NoAlias) /
                                static_cast<double>(C.Queries)
                          : 0.0);
  }
  std::printf("%-16s %10llu %10llu %8s %8s %7.1f%%\n\n", "total",
              static_cast<unsigned long long>(TotQ),
              static_cast<unsigned long long>(TotNo), "", "",
              TotQ ? 100.0 * static_cast<double>(TotNo) /
                         static_cast<double>(TotQ)
                   : 0.0);
}

double compileSeconds(const Workload &W, AuditLevel Audit, int Reps = 5) {
  using Clock = std::chrono::steady_clock;
  double Best = 1e30;
  for (int R = 0; R != Reps; ++R) {
    auto M = buildWorkload(W);
    PipelineOptions Opts;
    Opts.Audit = Audit;
    auto T0 = Clock::now();
    optimize(*M, OptLevel::Vliw, Opts);
    auto T1 = Clock::now();
    Best = std::min(Best,
                    std::chrono::duration<double>(T1 - T0).count());
  }
  return Best;
}

} // namespace

static void BM_VliwAuditBoundaries(benchmark::State &State) {
  const Workload &W = specWorkloads()[static_cast<size_t>(State.range(0))];
  for (auto _ : State) {
    auto M = buildWorkload(W);
    PipelineOptions Opts;
    Opts.Audit = AuditLevel::Boundaries;
    optimize(*M, OptLevel::Vliw, Opts);
    benchmark::DoNotOptimize(M->instrCount());
  }
  State.SetLabel(W.Name);
}
BENCHMARK(BM_VliwAuditBoundaries)->DenseRange(0, 5)
    ->Unit(benchmark::kMillisecond);

int main(int Argc, char **Argv) {
  std::printf("PassAudit compile-time overhead on the VLIW pipeline "
              "(best of 5)\n");
  std::printf("%-10s %10s %14s %12s %10s %10s\n", "Benchmark", "off(ms)",
              "boundaries(ms)", "full(ms)", "bnd ovh", "full ovh");
  std::vector<double> BndRatios, FullRatios;
  for (const Workload &W : specWorkloads()) {
    double Off = compileSeconds(W, AuditLevel::Off);
    double Bnd = compileSeconds(W, AuditLevel::Boundaries);
    double Full = compileSeconds(W, AuditLevel::Full);
    BndRatios.push_back(Bnd / Off);
    FullRatios.push_back(Full / Off);
    std::printf("%-10s %10.2f %14.2f %12.2f %9.0f%% %9.0f%%\n",
                W.Name.c_str(), Off * 1e3, Bnd * 1e3, Full * 1e3,
                (Bnd / Off - 1.0) * 100.0, (Full / Off - 1.0) * 100.0);
  }
  std::printf("%-10s %10s %14s %12s %9.0f%% %9.0f%%\n\n", "geomean", "", "",
              "", (geomean(BndRatios) - 1.0) * 100.0,
              (geomean(FullRatios) - 1.0) * 100.0);
  printAliasQueryTable();
  return runRegisteredBenchmarks(Argc, Argv);
}
