//===- bench/bench_audit_overhead.cpp - PassAudit compile-time cost ---------===//
///
/// Measures the compile-time overhead of the semantic pass audits on the
/// SPECint workload table: optimize() at OptLevel::Vliw with
/// AuditLevel::Off vs Boundaries (the level the fuzz suite runs at) vs
/// Full (a checkpoint after every sub-pass). The audits are a debugging /
/// CI net, so the interesting number is what Boundaries costs if left on.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <chrono>

using namespace vsc;

namespace {

double compileSeconds(const Workload &W, AuditLevel Audit, int Reps = 5) {
  using Clock = std::chrono::steady_clock;
  double Best = 1e30;
  for (int R = 0; R != Reps; ++R) {
    auto M = buildWorkload(W);
    PipelineOptions Opts;
    Opts.Audit = Audit;
    auto T0 = Clock::now();
    optimize(*M, OptLevel::Vliw, Opts);
    auto T1 = Clock::now();
    Best = std::min(Best,
                    std::chrono::duration<double>(T1 - T0).count());
  }
  return Best;
}

} // namespace

static void BM_VliwAuditBoundaries(benchmark::State &State) {
  const Workload &W = specWorkloads()[static_cast<size_t>(State.range(0))];
  for (auto _ : State) {
    auto M = buildWorkload(W);
    PipelineOptions Opts;
    Opts.Audit = AuditLevel::Boundaries;
    optimize(*M, OptLevel::Vliw, Opts);
    benchmark::DoNotOptimize(M->instrCount());
  }
  State.SetLabel(W.Name);
}
BENCHMARK(BM_VliwAuditBoundaries)->DenseRange(0, 5)
    ->Unit(benchmark::kMillisecond);

int main(int Argc, char **Argv) {
  std::printf("PassAudit compile-time overhead on the VLIW pipeline "
              "(best of 5)\n");
  std::printf("%-10s %10s %14s %12s %10s %10s\n", "Benchmark", "off(ms)",
              "boundaries(ms)", "full(ms)", "bnd ovh", "full ovh");
  std::vector<double> BndRatios, FullRatios;
  for (const Workload &W : specWorkloads()) {
    double Off = compileSeconds(W, AuditLevel::Off);
    double Bnd = compileSeconds(W, AuditLevel::Boundaries);
    double Full = compileSeconds(W, AuditLevel::Full);
    BndRatios.push_back(Bnd / Off);
    FullRatios.push_back(Full / Off);
    std::printf("%-10s %10.2f %14.2f %12.2f %9.0f%% %9.0f%%\n",
                W.Name.c_str(), Off * 1e3, Bnd * 1e3, Full * 1e3,
                (Bnd / Off - 1.0) * 100.0, (Full / Off - 1.0) * 100.0);
  }
  std::printf("%-10s %10s %14s %12s %9.0f%% %9.0f%%\n\n", "geomean", "", "",
              "", (geomean(BndRatios) - 1.0) * 100.0,
              (geomean(FullRatios) - 1.0) * 100.0);
  return runRegisteredBenchmarks(Argc, Argv);
}
