//===- bench/bench_pipelining.cpp - Exact pipelining optimality gap ---------===//
///
/// Grades the enhanced-pipeline-scheduling heuristic against the exact
/// branch-and-bound modulo scheduler (pipelining/ExactPipeliner.h) over
/// every registered kernel on the three stock machines. For each
/// pipelined innermost loop the compile in Apply mode records:
///
///  * min-II        — max(resource, recurrence) lower bound,
///  * heuristic-II  — the steady-state estimate the rotation heuristic
///                    reached,
///  * exact-II      — the best II the search proved reachable (0 when the
///                    loop is outside the model or the budget cut it),
///  * achieved-II   — what actually shipped (== heuristic unless Apply
///                    found and installed a strictly better kernel),
///
/// plus the search verdict. The table reports the optimality gap
/// (heuristic-II / exact-II, geomean over graded loops) and the number of
/// loops where Apply beat the heuristic. Every Apply build must behave
/// identically to the plain VLIW build on the reference input; for each
/// machine the first kernel with an Apply win is additionally re-compiled
/// under the full safety net (PassAudit + ExecOracle + alias audit) at 1
/// and 4 threads and the outputs compared byte for byte.
///
/// Writes BENCH_pipelining.json (override with --pipelining-out=FILE).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "ir/Printer.h"

#include <cstring>

using namespace vsc;

namespace {

struct KernelResult {
  std::vector<LoopPipelineRecord> Loops;
  uint64_t CyclesOff = 0;
  uint64_t CyclesApply = 0;
};

KernelResult compileKernel(const Workload &W, const MachineModel &Machine) {
  KernelResult R;
  auto Base = buildAt(W, OptLevel::Vliw, Machine);
  RunResult RefBase = runRef(*Base, W, Machine);
  R.CyclesOff = RefBase.Cycles;

  auto M = buildWorkload(W);
  PipelineStats Stats;
  PipelineOptions Opts;
  Opts.Machine = Machine;
  Opts.ExactPipelining = ExactPipelineMode::Apply;
  Opts.Stats = &Stats;
  optimize(*M, OptLevel::Vliw, Opts);
  RunResult RefApply = runRef(*M, W, Machine);
  checkSame(RefBase, RefApply, (W.Name + "@" + Machine.Name).c_str());
  R.CyclesApply = RefApply.Cycles;
  R.Loops = std::move(Stats.PipelineLoops);
  return R;
}

/// Apply compile under the full safety net; \returns the optimized
/// module's bytes (the audits abort the process on any finding).
std::string auditedApply(const Workload &W, const MachineModel &Machine,
                         unsigned Threads) {
  auto M = buildWorkload(W);
  PipelineOptions Opts;
  Opts.Machine = Machine;
  Opts.ExactPipelining = ExactPipelineMode::Apply;
  Opts.Audit = AuditLevel::Boundaries;
  Opts.Oracle = OracleLevel::Boundaries;
  Opts.AliasAudit = true;
  Opts.Threads = Threads;
  optimize(*M, OptLevel::Vliw, Opts);
  return printModule(*M);
}

} // namespace

static void BM_GradeCompile(benchmark::State &State) {
  const Workload &W = workloads::allKernels()[0];
  for (auto _ : State) {
    auto M = buildWorkload(W);
    PipelineOptions Opts;
    Opts.ExactPipelining = ExactPipelineMode::Grade;
    optimize(*M, OptLevel::Vliw, Opts);
    benchmark::DoNotOptimize(M);
  }
  State.SetLabel(W.Name);
}
BENCHMARK(BM_GradeCompile)->Unit(benchmark::kMillisecond);

int main(int Argc, char **Argv) {
  // Peel off --pipelining-out=FILE before google-benchmark sees the args.
  std::string OutPath = "BENCH_pipelining.json";
  std::vector<char *> Rest;
  for (int I = 0; I != Argc; ++I) {
    if (std::strncmp(Argv[I], "--pipelining-out=", 17) == 0)
      OutPath = Argv[I] + 17;
    else
      Rest.push_back(Argv[I]);
  }
  int RestArgc = static_cast<int>(Rest.size());

  const MachineModel Machines[] = {rs6000(), power2(), ppc601()};
  const auto &Ws = workloads::allKernels();

  std::printf("Exact software pipelining: heuristic vs branch-and-bound\n");
  std::printf("(per innermost loop: min-II <= exact-II <= heuristic-II; "
              "achieved == heuristic unless Apply won)\n\n");

  JsonWriter J;
  J.beginObject();
  J.key("bench").str("pipelining");
  J.key("machines").beginArray();

  std::vector<double> AllGaps;
  unsigned AllWins = 0;
  for (const MachineModel &Machine : Machines) {
    std::printf("--- %s ---\n", Machine.Name.c_str());
    std::printf("%-10s %5s %5s | %6s %6s %6s %6s | %-8s %12s %12s\n",
                "kernel", "loops", "wins", "minII", "heur", "exact", "ach",
                "verdicts", "cyc(off)", "cyc(apply)");
    J.beginObject();
    J.key("name").str(Machine.Name);
    J.key("kernels").beginArray();

    std::vector<double> Gaps;
    unsigned Wins = 0;
    std::string FirstWinKernel;
    for (const Workload &W : Ws) {
      KernelResult R = compileKernel(W, Machine);

      unsigned KWins = 0, Opt = 0, Feas = 0, Budget = 0, Inf = 0;
      uint64_t SumMin = 0, SumHeur = 0, SumExact = 0, SumAch = 0;
      for (const LoopPipelineRecord &L : R.Loops) {
        SumMin += L.minII();
        SumHeur += L.HeuristicII;
        SumAch += L.AchievedII;
        if (L.ExactII) {
          SumExact += L.ExactII;
          Gaps.push_back(static_cast<double>(L.HeuristicII) /
                         static_cast<double>(L.ExactII));
        }
        if (L.Applied && L.AchievedII < L.HeuristicII)
          ++KWins;
        switch (L.Verdict) {
        case ExactVerdict::Optimal:
          ++Opt;
          break;
        case ExactVerdict::Feasible:
          ++Feas;
          break;
        case ExactVerdict::BudgetExceeded:
          ++Budget;
          break;
        case ExactVerdict::Infeasible:
          ++Inf;
          break;
        }
      }
      Wins += KWins;
      if (KWins && FirstWinKernel.empty())
        FirstWinKernel = W.Name;

      char Verdicts[32];
      std::snprintf(Verdicts, sizeof(Verdicts), "%u/%u/%u/%u", Opt, Feas,
                    Budget, Inf);
      std::printf("%-10s %5zu %5u | %6llu %6llu %6llu %6llu | %-8s %12llu "
                  "%12llu\n",
                  W.Name.c_str(), R.Loops.size(), KWins,
                  static_cast<unsigned long long>(SumMin),
                  static_cast<unsigned long long>(SumHeur),
                  static_cast<unsigned long long>(SumExact),
                  static_cast<unsigned long long>(SumAch), Verdicts,
                  static_cast<unsigned long long>(R.CyclesOff),
                  static_cast<unsigned long long>(R.CyclesApply));

      J.beginObject();
      J.key("name").str(W.Name);
      J.key("cycles_off").num(R.CyclesOff);
      J.key("cycles_apply").num(R.CyclesApply);
      J.key("loops").beginArray();
      for (const LoopPipelineRecord &L : R.Loops) {
        J.beginObject();
        J.key("function").str(L.Function);
        J.key("header").str(L.Header);
        J.key("body").num(L.BodyInstrs);
        J.key("res_mii").num(L.ResMII);
        J.key("rec_mii").num(L.RecMII);
        J.key("min_ii").num(L.minII());
        J.key("heuristic_ii").num(L.HeuristicII);
        J.key("exact_ii").num(L.ExactII);
        J.key("achieved_ii").num(L.AchievedII);
        J.key("verdict").str(exactVerdictName(L.Verdict));
        J.key("applied").boolean(L.Applied);
        J.key("nodes").num(L.NodesExplored);
        J.endObject();
      }
      J.endArray();
      J.endObject();
    }
    J.endArray();

    // The acceptance bar: a winning Apply kernel must survive the full
    // safety net with byte-identical output at every thread count.
    bool WinAudited = false;
    if (!FirstWinKernel.empty()) {
      const Workload *W = workloads::findKernel(FirstWinKernel);
      std::string One = auditedApply(*W, Machine, 1);
      std::string Four = auditedApply(*W, Machine, 4);
      if (One != Four) {
        std::fprintf(stderr,
                     "THREAD DIVERGENCE in audited apply of %s@%s\n",
                     FirstWinKernel.c_str(), Machine.Name.c_str());
        std::abort();
      }
      WinAudited = true;
      std::printf("audited apply win: %s (PassAudit+ExecOracle+alias-audit, "
                  "threads 1==4)\n",
                  FirstWinKernel.c_str());
    }

    double MachineGap = Gaps.empty() ? 1.0 : geomean(Gaps);
    std::printf("%-10s %5s %5u | gap geomean %.4f\n\n", "total", "", Wins,
                MachineGap);
    J.key("gap_geomean").num(MachineGap, 4);
    J.key("apply_wins").num(Wins);
    J.key("apply_win_audited").boolean(WinAudited);
    J.endObject();

    AllGaps.insert(AllGaps.end(), Gaps.begin(), Gaps.end());
    AllWins += Wins;
  }
  J.endArray();
  double TotalGap = AllGaps.empty() ? 1.0 : geomean(AllGaps);
  J.key("gap_geomean").num(TotalGap, 4);
  J.key("apply_wins").num(AllWins);
  J.endObject();

  std::printf("overall: %zu graded loops, gap geomean %.4f, %u apply wins\n",
              AllGaps.size(), TotalGap, AllWins);

  if (FILE *F = std::fopen(OutPath.c_str(), "w")) {
    std::fputs(J.take().c_str(), F);
    std::fclose(F);
    std::printf("wrote %s\n", OutPath.c_str());
  }

  return runRegisteredBenchmarks(RestArgc, Rest.data());
}
