//===- bench/bench_pdf_gain.cpp - Experiment E5 --------------------------------===//
///
/// The paper: "The optimizations described below ... result in a 4-5%
/// additional improvement on SPECint92 (using the short SPEC inputs for
/// generating profiling data)". This bench trains each workload on its
/// short input, applies profile-directed feedback (scheduling heuristics,
/// block reordering, branch reversal), and measures on the reference
/// input.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace vsc;

static void BM_PdfCollect(benchmark::State &State) {
  const Workload &W = specWorkloads()[2]; // eqntott
  for (auto _ : State) {
    auto Train = buildWorkload(W);
    auto Target = buildWorkload(W);
    ProfileData P = collectProfile(*Train, *Target, rs6000(),
                                   workloadInput(W.TrainScale));
    benchmark::DoNotOptimize(P.BlockCount.size());
  }
  State.SetLabel("collect-profile(eqntott)");
}
BENCHMARK(BM_PdfCollect)->Unit(benchmark::kMillisecond);

int main(int Argc, char **Argv) {
  MachineModel Machine = rs6000();
  std::printf("Profile-directed feedback gain (train on short input, "
              "measure on reference input)\n");
  std::printf("%-10s %12s %12s %9s\n", "Benchmark", "vliw", "vliw+pdf",
              "gain");
  std::vector<double> Gains;
  for (const Workload &W : specWorkloads()) {
    auto Vliw = buildAt(W, OptLevel::Vliw, Machine);
    ProfileData P;
    auto Pdf = buildAt(W, OptLevel::Vliw, Machine, /*WithPdf=*/true, &P);
    RunResult RV = runRef(*Vliw, W, Machine);
    RunResult RP = runRef(*Pdf, W, Machine);
    checkSame(RV, RP, W.Name.c_str());
    double Gain = static_cast<double>(RV.Cycles) /
                  static_cast<double>(RP.Cycles);
    Gains.push_back(Gain);
    std::printf("%-10s %12llu %12llu %8.1f%%\n", W.Name.c_str(),
                static_cast<unsigned long long>(RV.Cycles),
                static_cast<unsigned long long>(RP.Cycles),
                (Gain - 1.0) * 100.0);
  }
  std::printf("%-10s %12s %12s %8.1f%%   (paper: +4-5%%)\n\n", "geomean",
              "", "", (geomean(Gains) - 1.0) * 100.0);
  return runRegisteredBenchmarks(Argc, Argv);
}
