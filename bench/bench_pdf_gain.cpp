//===- bench/bench_pdf_gain.cpp - Experiment E5 --------------------------------===//
///
/// The paper: "The optimizations described below ... result in a 4-5%
/// additional improvement on SPECint92 (using the short SPEC inputs for
/// generating profiling data)". This bench trains each workload on its
/// short input, applies profile-directed feedback (scheduling heuristics,
/// block reordering, branch reversal), and measures on the reference
/// input — all through the pdf/PdfExperiment.h driver.
///
/// With --pdf-out=FILE it additionally times the whole six-kernel
/// experiment end to end, pre-PR shape (rebuild + re-instrument the
/// module per training input, string-keyed counters, serial) against the
/// ProfileStore path (one build, one predecode, dense slots, batteries
/// fanned over VSC_THREADS workers), and writes the comparison as JSON.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "pdf/PdfExperiment.h"
#include "support/ThreadPool.h"

#include <chrono>
#include <cstring>

using namespace vsc;

namespace {

using Clock = std::chrono::steady_clock;

double seconds(Clock::time_point T0, Clock::time_point T1) {
  return std::chrono::duration<double>(T1 - T0).count();
}

std::vector<RunOptions> trainBattery(int64_t BaseScale) {
  std::vector<RunOptions> Battery;
  for (int64_t S = BaseScale - 2; S <= BaseScale + 5; ++S)
    Battery.push_back(workloadInput(S < 1 ? 1 : S));
  return Battery;
}

/// The pre-PR-5 experiment shape, reproduced faithfully: every training
/// input rebuilds and re-instruments the module, profiles merge as
/// string-keyed maps, the baseline is rebuilt too, and every simulation
/// re-predecodes. Serial throughout. Faithfulness includes the old
/// path's training runs on unprepared (prolog-less) modules, which
/// misread the training argument on most kernels — the ProfileStore
/// driver prepares a run-ready clone instead.
uint64_t legacyExperiment(const Workload &W, const MachineModel &Machine,
                          const std::vector<RunOptions> &Train) {
  auto Target = buildWorkload(W);
  ProfileData Profile;
  for (const RunOptions &In : Train) {
    auto TrainCopy = buildWorkload(W);
    auto PlanCopy = buildWorkload(W); // throwaway plan target per input
    ProfileData P = collectProfile(*TrainCopy, *PlanCopy, Machine, In);
    for (const auto &[K, V] : P.BlockCount)
      Profile.BlockCount[K] += V;
    for (const auto &[K, V] : P.EdgeCount)
      Profile.EdgeCount[K] += V;
  }
  for (auto &F : Target->functions())
    planCounters(*F); // the surgery collectProfile applied to its target
  PipelineOptions Guided;
  Guided.Machine = Machine;
  Guided.Profile = &Profile;
  Guided.TrainInput = &Train.front();
  optimize(*Target, OptLevel::Vliw, Guided);

  auto Baseline = buildWorkload(W);
  optimize(*Baseline, OptLevel::Vliw);

  RunResult RB = simulate(*Baseline, Machine, workloadInput(W.RefScale));
  RunResult RG = simulate(*Target, Machine, workloadInput(W.RefScale));
  checkSame(RB, RG, W.Name.c_str());
  return RB.Cycles + RG.Cycles;
}

} // namespace

static void BM_PdfCollectLegacy(benchmark::State &State) {
  const Workload &W = specWorkloads()[2]; // eqntott
  for (auto _ : State) {
    auto Train = buildWorkload(W);
    auto Target = buildWorkload(W);
    ProfileData P = collectProfile(*Train, *Target, rs6000(),
                                   workloadInput(W.TrainScale));
    benchmark::DoNotOptimize(P.BlockCount.size());
  }
  State.SetLabel("collect-profile(eqntott), rebuild per run");
}
BENCHMARK(BM_PdfCollectLegacy)->Unit(benchmark::kMillisecond);

static void BM_PdfCollectDense(benchmark::State &State) {
  const Workload &W = specWorkloads()[2];
  auto M = buildWorkload(W);
  SimEngine Engine(*M, rs6000());
  std::vector<RunOptions> Train = {workloadInput(W.TrainScale)};
  for (auto _ : State) {
    DenseProfile P = collectDenseProfile(Engine, Train);
    benchmark::DoNotOptimize(P.BlockCounts.size());
  }
  State.SetLabel("collect-dense(eqntott), cached predecode");
}
BENCHMARK(BM_PdfCollectDense)->Unit(benchmark::kMillisecond);

int main(int Argc, char **Argv) {
  std::string OutPath;
  std::vector<char *> Rest;
  for (int I = 0; I != Argc; ++I) {
    if (std::strncmp(Argv[I], "--pdf-out=", 10) == 0)
      OutPath = Argv[I] + 10;
    else
      Rest.push_back(Argv[I]);
  }
  int RestArgc = static_cast<int>(Rest.size());

  MachineModel Machine = rs6000();
  std::printf("Profile-directed feedback gain (train on short input, "
              "measure on reference input)\n");
  std::printf("%-10s %12s %12s %9s\n", "Benchmark", "vliw", "vliw+pdf",
              "gain");
  std::vector<double> Gains;
  for (const Workload &W : workloads::allKernels()) {
    auto Source = buildWorkload(W);
    PdfExperimentOptions Opts;
    Opts.Machine = Machine;
    Opts.Train = {workloadInput(W.TrainScale)};
    Opts.Test = {workloadInput(W.RefScale)};
    Opts.ProfileSource = PdfExperimentOptions::Source::Counters;
    PdfExperimentResult R = runPdfExperiment(*Source, Opts);
    if (!R.ok()) {
      std::fprintf(stderr, "%s: %s\n", W.Name.c_str(), R.Error.c_str());
      std::abort();
    }
    Gains.push_back(R.gain());
    std::printf("%-10s %12llu %12llu %8.1f%%\n", W.Name.c_str(),
                static_cast<unsigned long long>(R.BaselineCycles),
                static_cast<unsigned long long>(R.GuidedCycles),
                (R.gain() - 1.0) * 100.0);
  }
  std::printf("%-10s %12s %12s %8.1f%%   (paper: +4-5%% on the SPEC six; "
              "table includes the irregular kernels)\n\n",
              "geomean", "", "", (geomean(Gains) - 1.0) * 100.0);

  if (!OutPath.empty()) {
    unsigned Threads = ThreadPool::defaultThreadCount();
    std::printf("End-to-end experiment: pre-PR path (rebuild per training "
                "input, serial) vs ProfileStore (VSC_THREADS=%u)\n",
                Threads);
    std::printf("%-10s %12s %12s %9s\n", "Benchmark", "legacy(ms)",
                "store(ms)", "speedup");
    JsonWriter Json;
    Json.beginObject()
        .key("bench")
        .str("pdf")
        .key("threads")
        .num(Threads)
        .key("kernels")
        .beginArray();
    double LegacyTotal = 0, StoreTotal = 0;
    const auto &Ws = specWorkloads();
    for (size_t I = 0; I != Ws.size(); ++I) {
      const Workload &W = Ws[I];
      std::vector<RunOptions> Train = trainBattery(W.TrainScale);

      auto T0 = Clock::now();
      uint64_t LegacyCycles = legacyExperiment(W, Machine, Train);
      auto T1 = Clock::now();

      auto Source = buildWorkload(W);
      PdfExperimentOptions Opts;
      Opts.Machine = Machine;
      Opts.Train = Train;
      Opts.Test = {workloadInput(W.RefScale)};
      Opts.ProfileSource = PdfExperimentOptions::Source::Exact;
      Opts.GateOnBattery = false; // match the legacy single-input gate
      auto T2 = Clock::now();
      PdfExperimentResult R = runPdfExperiment(*Source, Opts);
      auto T3 = Clock::now();
      if (!R.ok()) {
        std::fprintf(stderr, "%s: %s\n", W.Name.c_str(), R.Error.c_str());
        std::abort();
      }
      benchmark::DoNotOptimize(LegacyCycles);

      double Legacy = seconds(T0, T1), Store = seconds(T2, T3);
      LegacyTotal += Legacy;
      StoreTotal += Store;
      std::printf("%-10s %12.1f %12.1f %8.2fx\n", W.Name.c_str(),
                  Legacy * 1e3, Store * 1e3, Legacy / Store);
      Json.beginObject()
          .key("name")
          .str(W.Name)
          .key("legacy_seconds")
          .num(Legacy, 6)
          .key("store_seconds")
          .num(Store, 6)
          .key("speedup")
          .num(Legacy / Store, 3)
          .endObject();
    }
    double Speedup = LegacyTotal / StoreTotal;
    std::printf("%-10s %12.1f %12.1f %8.2fx\n\n", "total",
                LegacyTotal * 1e3, StoreTotal * 1e3, Speedup);
    Json.endArray()
        .key("legacy_seconds")
        .num(LegacyTotal, 6)
        .key("store_seconds")
        .num(StoreTotal, 6)
        .key("speedup")
        .num(Speedup, 3)
        .endObject();
    if (FILE *F = std::fopen(OutPath.c_str(), "w")) {
      std::fputs(Json.take().c_str(), F);
      std::fclose(F);
      std::printf("wrote %s\n\n", OutPath.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", OutPath.c_str());
    }
  }

  return runRegisteredBenchmarks(RestArgc, Rest.data());
}
