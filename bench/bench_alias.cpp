//===- bench/bench_alias.cpp - Flow-sensitive disambiguation gain -----------===//
///
/// Measures what the flow-sensitive analysis tier buys over the purely
/// syntactic one on the SPECint workload table, in two front-end regimes:
///
///  * annotated — the mini-C frontend stamps every global access with its
///    `!sym` annotation, so the syntactic tier already knows the symbol;
///  * opaque — the same modules with the global-symbol annotations
///    stripped (compiler-internal `$csave` spill tags are kept — the
///    prolog tailorer keys on them). This models separately-compiled or
///    pointer-laundered code where no per-access symbol info survives;
///    the flow tier must recover the bases from the TOC-load chains.
///
/// For each regime every pair of memory accesses in the
/// Classical-optimized module is queried under both tiers (SameExecution
/// for same-block pairs, CrossExecution otherwise) and the fraction
/// resolved NoAlias is reported. For the opaque regime the full VLIW
/// pipeline is then compiled with PipelineOptions::FlowSensitiveAlias off
/// vs on and simulated on the reference input — the cycle delta is what
/// the recovered disambiguation is worth end-to-end. All variants must
/// produce identical behaviour fingerprints.
///
/// Writes the table as BENCH_alias.json (override with --alias-out=FILE).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "analysis/MemAlias.h"
#include "analysis/ValueTrack.h"

#include <cstring>

using namespace vsc;

namespace {

/// A seventh, bench-local kernel with the shape of the paper's load/store
/// motion example: a hot loop that load-modify-stores several scalar
/// globals (one conditionally) while streaming an array. Register-caching
/// the scalars requires proving the stores disjoint — trivial with `!sym`
/// annotations, impossible for the syntactic tier once they are stripped,
/// and recovered by the flow tier from the TOC chains. The six SPEC
/// kernels cannot show this cycle delta: their hot stores are
/// variable-indexed accesses into one array, which no base-tracking
/// analysis can split.
const char *ScalarsSrc = R"(
int data[2048];
int total;
int count;
int maxv;

int main(int scale) {
  for (int i = 0; i < 2048; i++) {
    data[i] = (i * 37) & 255;
  }
  int checksum = 0;
  for (int pass = 0; pass < scale; pass++) {
    total = 0;
    count = 0;
    maxv = 0;
    for (int i = 0; i < 2048; i++) {
      int v = data[i];
      total = total + v;
      count = count + 1;
      if (v > maxv) {
        maxv = v;
      }
    }
    checksum = checksum + total + count + maxv;
  }
  print_int(checksum);
  return 0;
}
)";

/// Every registered kernel (SPEC six + irregular five) plus the scalars
/// kernel above. The irregular kernels matter here: the hash and chase
/// kernels issue variable-indexed accesses into several distinct global
/// arrays, which both tiers must split by base symbol, and the
/// interpreters mix dense vmem traffic with code-stream loads.
const std::vector<Workload> &aliasKernels() {
  static const std::vector<Workload> Ws = [] {
    std::vector<Workload> V = workloads::allKernels();
    V.push_back(Workload{"scalars", ScalarsSrc, 4, 16});
    return V;
  }();
  return Ws;
}

/// Clears the `!sym` annotation from every global memory access, leaving
/// LTOC symbols (the simulator relocates through them) and `$csave`
/// spill tags (PrologTailor identifies spill code by them) intact.
void stripGlobalAnnotations(Module &M) {
  for (const auto &F : M.functions())
    for (const auto &BB : F->blocks())
      for (Instr &I : BB->instrs())
        if (I.isMemAccess() && !I.Sym.empty() && I.Sym != "$csave")
          I.Sym.clear();
}

struct RateCount {
  uint64_t Pairs = 0;
  uint64_t SynNoAlias = 0;
  uint64_t FlowNoAlias = 0;

  double synPct() const { return pct(SynNoAlias); }
  double flowPct() const { return pct(FlowNoAlias); }
  double pct(uint64_t N) const {
    return Pairs ? 100.0 * static_cast<double>(N) /
                       static_cast<double>(Pairs)
                 : 0.0;
  }
};

/// Queries every unordered pair of memory accesses in \p M under both
/// tiers. Same-block pairs use SameExecution (the scope the scheduler
/// asks in); cross-block pairs use CrossExecution (the code-motion
/// scope), so the rate reflects the query mix real passes issue.
RateCount disambiguationRates(const Module &M) {
  RateCount C;
  for (const auto &F : M.functions()) {
    if (F->blocks().empty())
      continue;
    AliasAnalysis AA(*F);
    std::vector<std::pair<const Instr *, const BasicBlock *>> Accs;
    for (const auto &BB : F->blocks())
      for (const Instr &I : BB->instrs())
        if (I.isMemAccess())
          Accs.push_back({&I, BB.get()});
    for (size_t I = 0; I != Accs.size(); ++I)
      for (size_t J = I + 1; J != Accs.size(); ++J) {
        AliasScope Scope = Accs[I].second == Accs[J].second
                               ? AliasScope::SameExecution
                               : AliasScope::CrossExecution;
        ++C.Pairs;
        if (alias(*Accs[I].first, *Accs[J].first, Scope) ==
            AliasResult::NoAlias)
          ++C.SynNoAlias;
        if (AA.alias(*Accs[I].first, *Accs[J].first, Scope) ==
            AliasResult::NoAlias)
          ++C.FlowNoAlias;
      }
  }
  return C;
}

RateCount ratesAt(const Workload &W, bool Opaque) {
  auto M = buildWorkload(W);
  if (Opaque)
    stripGlobalAnnotations(*M);
  optimize(*M, OptLevel::Classical, PipelineOptions());
  return disambiguationRates(*M);
}

uint64_t cyclesOpaque(const Workload &W, bool FlowAlias, RunResult *Out) {
  auto M = buildWorkload(W);
  stripGlobalAnnotations(*M);
  PipelineOptions Opts;
  Opts.FlowSensitiveAlias = FlowAlias;
  optimize(*M, OptLevel::Vliw, Opts);
  *Out = runRef(*M, W, rs6000());
  return Out->Cycles;
}

} // namespace

static void BM_AliasAnalysisBuild(benchmark::State &State) {
  const Workload &W = aliasKernels()[static_cast<size_t>(State.range(0))];
  auto M = buildAt(W, OptLevel::Classical, rs6000());
  for (auto _ : State)
    for (const auto &F : M->functions())
      if (!F->blocks().empty()) {
        AliasAnalysis AA(*F);
        benchmark::DoNotOptimize(AA.location(1));
      }
  State.SetLabel(W.Name);
}
BENCHMARK(BM_AliasAnalysisBuild)
    ->DenseRange(0, static_cast<int>(aliasKernels().size()) - 1)
    ->Unit(benchmark::kMillisecond);

int main(int Argc, char **Argv) {
  // Peel off --alias-out=FILE before google-benchmark sees the args.
  std::string OutPath = "BENCH_alias.json";
  std::vector<char *> Rest;
  for (int I = 0; I != Argc; ++I) {
    if (std::strncmp(Argv[I], "--alias-out=", 12) == 0)
      OutPath = Argv[I] + 12;
    else
      Rest.push_back(Argv[I]);
  }
  int RestArgc = static_cast<int>(Rest.size());

  std::printf("Memory disambiguation: syntactic vs flow-sensitive tier\n");
  std::printf("(NoAlias %% over all access pairs, Classical module; cycles "
              "from the opaque VLIW pipeline, ref inputs)\n");
  std::printf("%-10s %6s | %8s %8s | %8s %8s | %12s %12s %8s\n",
              "Benchmark", "pairs", "ann-syn", "ann-flow", "opq-syn",
              "opq-flow", "cyc(syn)", "cyc(flow)", "speedup");

  std::vector<double> Speedups;
  std::string Json = "{\n  \"bench\": \"alias\",\n  \"kernels\": [\n";
  const auto &Ws = aliasKernels();
  for (size_t I = 0; I != Ws.size(); ++I) {
    const Workload &W = Ws[I];
    RateCount Ann = ratesAt(W, /*Opaque=*/false);
    RateCount Opq = ratesAt(W, /*Opaque=*/true);

    RunResult RSyn, RFlow;
    uint64_t Syn = cyclesOpaque(W, /*FlowAlias=*/false, &RSyn);
    uint64_t Flow = cyclesOpaque(W, /*FlowAlias=*/true, &RFlow);
    checkSame(RSyn, RFlow, W.Name.c_str());
    // The opaque build must also behave identically to the annotated one.
    auto MAnn = buildAt(W, OptLevel::Vliw, rs6000());
    RunResult RAnn = runRef(*MAnn, W, rs6000());
    checkSame(RAnn, RFlow, (W.Name + " (annotated)").c_str());

    double Speedup =
        static_cast<double>(Syn) / static_cast<double>(Flow);
    Speedups.push_back(Speedup);

    std::printf("%-10s %6llu | %7.1f%% %7.1f%% | %7.1f%% %7.1f%% | %12llu "
                "%12llu %7.3fx\n",
                W.Name.c_str(),
                static_cast<unsigned long long>(Opq.Pairs), Ann.synPct(),
                Ann.flowPct(), Opq.synPct(), Opq.flowPct(),
                static_cast<unsigned long long>(Syn),
                static_cast<unsigned long long>(Flow), Speedup);

    char Buf[448];
    std::snprintf(
        Buf, sizeof(Buf),
        "    {\"name\": \"%s\", \"pairs\": %llu, "
        "\"annotated_syntactic_noalias_pct\": %.2f, "
        "\"annotated_flow_noalias_pct\": %.2f, "
        "\"opaque_syntactic_noalias_pct\": %.2f, "
        "\"opaque_flow_noalias_pct\": %.2f, "
        "\"opaque_cycles_syntactic\": %llu, "
        "\"opaque_cycles_flow\": %llu, \"speedup\": %.4f}%s\n",
        W.Name.c_str(), static_cast<unsigned long long>(Opq.Pairs),
        Ann.synPct(), Ann.flowPct(), Opq.synPct(), Opq.flowPct(),
        static_cast<unsigned long long>(Syn),
        static_cast<unsigned long long>(Flow), Speedup,
        I + 1 != Ws.size() ? "," : "");
    Json += Buf;
  }
  double Geomean = geomean(Speedups);
  std::printf("%-10s %6s | %8s %8s | %8s %8s | %12s %12s %7.3fx\n\n",
              "geomean", "", "", "", "", "", "", "", Geomean);

  char Tail[96];
  std::snprintf(Tail, sizeof(Tail),
                "  ],\n  \"geomean_speedup\": %.4f\n}\n", Geomean);
  Json += Tail;
  if (FILE *F = std::fopen(OutPath.c_str(), "w")) {
    std::fputs(Json.c_str(), F);
    std::fclose(F);
    std::printf("wrote %s\n", OutPath.c_str());
  }

  return runRegisteredBenchmarks(RestArgc, Rest.data());
}
