//===- bench/bench_loadstore_motion.cpp - Experiment E7 -----------------------===//
///
/// The paper's speculative load/store motion example: a conditionally
/// executed load/increment/store of a TOC-anchored global inside a loop is
/// register-cached, shrinking the loop to a single AI after cleanup.
/// Sweeps the trip count.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "ir/Parser.h"
#include "opt/Classical.h"
#include "vliw/LimitedCombine.h"
#include "vliw/LoadStoreMotion.h"

using namespace vsc;

namespace {

std::unique_ptr<Module> buildKernel(unsigned Trips) {
  std::string Text = R"(
global a : 16
func main(0) {
entry:
  LTOC r4 = .a
)";
  Text += "  LI r32 = " + std::to_string(Trips) + "\n";
  Text += R"(  MTCTR r32
  LI r33 = 0
CL.0:
  AI r33 = r33, 1
  ANDI r34 = r33, 3
  CI cr0 = r34, 0
  BT CL.1, cr0.eq
body:
  L r3 = 12(r4) !a
  AI r3 = r3, 1
  ST 12(r4) !a = r3
CL.1:
  BCT CL.0
exit:
  L r3 = 12(r4) !a
  CALL print_int, 1
  RET
}
)";
  std::string Err;
  auto M = parseModule(Text, &Err);
  assert(M && "kernel must parse");
  return M;
}

void applyMotion(Module &M) {
  Function &F = *M.findFunction("main");
  speculativeLoadStoreMotion(F, M);
  limitedCombine(F);
  copyPropagate(F);
  deadCodeElim(F);
}

} // namespace

static void BM_MotionPass(benchmark::State &State) {
  for (auto _ : State) {
    auto M = buildKernel(1000);
    applyMotion(*M);
    benchmark::DoNotOptimize(M->instrCount());
  }
}
BENCHMARK(BM_MotionPass);

int main(int Argc, char **Argv) {
  std::printf("Speculative load/store motion out of loops (the paper's "
              "example)\n");
  std::printf("%8s %14s %14s %14s %14s\n", "trips", "cycles-before",
              "cycles-after", "dyn-before", "dyn-after");
  for (unsigned Trips : {100u, 1000u, 10000u}) {
    auto Before = buildKernel(Trips);
    auto After = buildKernel(Trips);
    applyMotion(*After);
    RunResult RB = simulate(*Before, rs6000());
    RunResult RA = simulate(*After, rs6000());
    checkSame(RB, RA, "loadstore-motion kernel");
    std::printf("%8u %14llu %14llu %14llu %14llu\n", Trips,
                static_cast<unsigned long long>(RB.Cycles),
                static_cast<unsigned long long>(RA.Cycles),
                static_cast<unsigned long long>(RB.DynInstrs),
                static_cast<unsigned long long>(RA.DynInstrs));
  }
  std::printf("(the loop body loses its load and store; only the AI on the "
              "register-cached copy remains)\n\n");
  return runRegisteredBenchmarks(Argc, Argv);
}
