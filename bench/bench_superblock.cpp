//===- bench/bench_superblock.cpp - Trace-scheduling comparator --------------===//
///
/// The paper argues its techniques "do not depend on branch probabilities
/// ... as opposed to trace scheduling and its derivatives". This bench
/// puts numbers behind that positioning: the profile-independent VLIW
/// pipeline vs. profile-directed feedback vs. IMPACT-style superblock
/// formation (tail-duplicated hot traces) on top of PDF, all trained on
/// the short inputs and measured on the reference inputs.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "profile/Superblock.h"

using namespace vsc;

static void BM_SuperblockCompile(benchmark::State &State) {
  const Workload &W = specWorkloads()[2];
  for (auto _ : State) {
    auto Train = buildWorkload(W);
    auto M = buildWorkload(W);
    ProfileData P = collectProfile(*Train, *M, rs6000(),
                                   workloadInput(W.TrainScale));
    PipelineOptions Opts;
    Opts.Profile = &P;
    Opts.Superblocks = true;
    optimize(*M, OptLevel::Vliw, Opts);
    benchmark::DoNotOptimize(M->instrCount());
  }
  State.SetLabel("eqntott");
}
BENCHMARK(BM_SuperblockCompile)->Unit(benchmark::kMillisecond);

int main(int Argc, char **Argv) {
  MachineModel Machine = rs6000();
  std::printf("Profile-independent vs profile-directed vs superblock "
              "pipelines (cycles, reference inputs)\n");
  std::printf("%-10s %12s %12s %12s %10s %10s\n", "Benchmark", "vliw",
              "vliw+pdf", "+superblock", "sb-gain", "sb-size");
  std::vector<double> Gains;
  for (const Workload &W : specWorkloads()) {
    auto Plain = buildAt(W, OptLevel::Vliw, Machine);
    RunResult RP = runRef(*Plain, W, Machine);

    RunOptions TrainInput = workloadInput(W.TrainScale);
    auto TrainA = buildWorkload(W);
    auto Pdf = buildWorkload(W);
    ProfileData P1 = collectProfile(*TrainA, *Pdf, Machine, TrainInput);
    PipelineOptions OptsPdf;
    OptsPdf.Machine = Machine;
    OptsPdf.Profile = &P1;
    OptsPdf.TrainInput = &TrainInput;
    optimize(*Pdf, OptLevel::Vliw, OptsPdf);
    RunResult RPdf = runRef(*Pdf, W, Machine);
    checkSame(RP, RPdf, W.Name.c_str());

    auto TrainB = buildWorkload(W);
    auto Sb = buildWorkload(W);
    ProfileData P2 = collectProfile(*TrainB, *Sb, Machine, TrainInput);
    PipelineOptions OptsSb;
    OptsSb.Machine = Machine;
    OptsSb.Profile = &P2;
    OptsSb.TrainInput = &TrainInput;
    OptsSb.Superblocks = true;
    optimize(*Sb, OptLevel::Vliw, OptsSb);
    RunResult RSb = runRef(*Sb, W, Machine);
    checkSame(RP, RSb, W.Name.c_str());

    double Gain = static_cast<double>(RPdf.Cycles) /
                  static_cast<double>(RSb.Cycles);
    Gains.push_back(Gain);
    std::printf("%-10s %12llu %12llu %12llu %9.1f%% %10zu\n",
                W.Name.c_str(),
                static_cast<unsigned long long>(RP.Cycles),
                static_cast<unsigned long long>(RPdf.Cycles),
                static_cast<unsigned long long>(RSb.Cycles),
                (Gain - 1.0) * 100.0, Sb->instrCount());
  }
  std::printf("%-10s %12s %12s %12s %9.1f%%\n", "geomean", "", "", "",
              (geomean(Gains) - 1.0) * 100.0);
  std::printf("(superblocks buy a little more on skewed traces and cost "
              "code growth — consistent\nwith the paper's choice to stay "
              "profile-independent by default)\n\n");
  return runRegisteredBenchmarks(Argc, Argv);
}
