//===- bench/bench_unspeculation.cpp - Experiment E8 --------------------------===//
///
/// The paper's unspeculation examples: the flag=1/if(cond){...flag=0}
/// pattern moves the speculative store-equivalent to the else arm, and
/// speculative code inside a loop is pushed out through the exits. Sweeps
/// the probability of the path that makes the work useless.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "ir/Parser.h"
#include "vliw/Unspeculation.h"

using namespace vsc;

namespace {

/// flag kernel: per iteration, flag=1 then conditionally overwritten.
/// Mod controls how often the overwrite happens (the paper's "result not
/// always used" case).
std::unique_ptr<Module> buildFlagKernel(unsigned Trips, unsigned Mod) {
  std::string Text = "func main(0) {\nentry:\n  LI r30 = " +
                     std::to_string(Trips) + "\n  MTCTR r30\n  LI r31 = 0\n" +
                     "  LI r29 = 0\nloop:\n  AI r31 = r31, 1\n  LI r40 = 1\n" +
                     "  ANDI r32 = r31, " + std::to_string(Mod - 1) + "\n" +
                     R"(  CI cr0 = r32, 0
  BT keep, cr0.eq
set0:
  MULI r41 = r31, 3
  LI r40 = 0
keep:
  A r29 = r29, r40
  BCT loop
exit:
  LR r3 = r29
  CALL print_int, 1
  RET
}
)";
  std::string Err;
  auto M = parseModule(Text, &Err);
  assert(M && "kernel must parse");
  return M;
}

} // namespace

static void BM_UnspeculatePass(benchmark::State &State) {
  for (auto _ : State) {
    auto M = buildFlagKernel(1000, 4);
    unspeculate(*M->findFunction("main"));
    benchmark::DoNotOptimize(M->instrCount());
  }
}
BENCHMARK(BM_UnspeculatePass);

int main(int Argc, char **Argv) {
  std::printf("Unspeculation (flag example; overwrite every Mod-th "
              "iteration)\n");
  std::printf("%6s %14s %14s %14s %14s\n", "Mod", "dyn-before",
              "dyn-after", "cycles-before", "cycles-after");
  for (unsigned Mod : {2u, 4u, 8u}) {
    auto Before = buildFlagKernel(4000, Mod);
    auto After = buildFlagKernel(4000, Mod);
    unspeculate(*After->findFunction("main"));
    RunResult RB = simulate(*Before, rs6000());
    RunResult RA = simulate(*After, rs6000());
    checkSame(RB, RA, "flag kernel");
    std::printf("%6u %14llu %14llu %14llu %14llu\n", Mod,
                static_cast<unsigned long long>(RB.DynInstrs),
                static_cast<unsigned long long>(RA.DynInstrs),
                static_cast<unsigned long long>(RB.Cycles),
                static_cast<unsigned long long>(RA.Cycles));
  }
  std::printf("(LI r40=1 executes only on the path that needs it after the "
              "pass)\n\n");
  return runRegisteredBenchmarks(Argc, Argv);
}
