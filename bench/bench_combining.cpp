//===- bench/bench_combining.cpp - Experiment E9 -------------------------------===//
///
/// Limited combining: collapsible register copies and load-immediates are
/// folded into their users across basic-block boundaries, with duplication
/// past join points. Measures pathlength reduction on copy-dense kernels.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "ir/Parser.h"
#include "opt/Classical.h"
#include "vliw/LimitedCombine.h"

using namespace vsc;

namespace {

/// A loop whose body is the load/store-motion output shape: copy in, AI,
/// copy out — the paper's canonical combining food.
std::unique_ptr<Module> buildCopyLoop(unsigned Trips) {
  std::string Text = "func main(0) {\nentry:\n  LI r30 = " +
                     std::to_string(Trips) + "\n" + R"(  MTCTR r30
  LI r20 = 0
loop:
  LR r40 = r20
  AI r41 = r40, 1
  LR r20 = r41
  LI r42 = 3
  A r21 = r41, r42
  BCT loop
exit:
  A r3 = r20, r21
  CALL print_int, 1
  RET
}
)";
  std::string Err;
  auto M = parseModule(Text, &Err);
  assert(M && "kernel must parse");
  return M;
}

} // namespace

static void BM_CombinePass(benchmark::State &State) {
  for (auto _ : State) {
    auto M = buildCopyLoop(100);
    limitedCombine(*M->findFunction("main"));
    benchmark::DoNotOptimize(M->instrCount());
  }
}
BENCHMARK(BM_CombinePass);

int main(int Argc, char **Argv) {
  std::printf("Limited combining on a copy-dense loop\n");
  std::printf("%8s %12s %12s %12s %12s %10s\n", "trips", "dyn-before",
              "dyn-after", "cyc-before", "cyc-after", "static");
  for (unsigned Trips : {100u, 1000u, 10000u}) {
    auto Before = buildCopyLoop(Trips);
    auto After = buildCopyLoop(Trips);
    Function &F = *After->findFunction("main");
    limitedCombine(F);
    deadCodeElim(F);
    RunResult RB = simulate(*Before, rs6000());
    RunResult RA = simulate(*After, rs6000());
    checkSame(RB, RA, "copy loop");
    std::printf("%8u %12llu %12llu %12llu %12llu %5zu->%zu\n", Trips,
                static_cast<unsigned long long>(RB.DynInstrs),
                static_cast<unsigned long long>(RA.DynInstrs),
                static_cast<unsigned long long>(RB.Cycles),
                static_cast<unsigned long long>(RA.Cycles),
                Before->instrCount(), After->instrCount());
  }
  std::printf("\n");
  return runRegisteredBenchmarks(Argc, Argv);
}
