//===- bench/bench_machines.cpp - Experiment A2 --------------------------------===//
///
/// Machine sweep mirroring the paper's "The same compiler is used to
/// generate code for the PowerPC 601 and Power2 processors, with similar
/// performance gains": classical vs VLIW speedup per machine model, with
/// the pipeline scheduling for that machine.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace vsc;

static void BM_VliwOnPower2(benchmark::State &State) {
  const Workload &W = specWorkloads()[0];
  auto M = buildAt(W, OptLevel::Vliw, power2());
  for (auto _ : State) {
    RunResult R = runRef(*M, W, power2());
    benchmark::DoNotOptimize(R.Cycles);
  }
  State.SetLabel("espresso@power2");
}
BENCHMARK(BM_VliwOnPower2)->Unit(benchmark::kMillisecond);

int main(int Argc, char **Argv) {
  const MachineModel Machines[] = {rs6000(), power2(), ppc601(), vliw8()};
  std::printf("VLIW-over-classical speedup per machine model\n");
  std::printf("%-10s", "Benchmark");
  for (const MachineModel &M : Machines)
    std::printf(" %10s", M.Name.c_str());
  std::printf("\n");

  std::vector<std::vector<double>> PerMachine(4);
  for (const Workload &W : specWorkloads()) {
    std::printf("%-10s", W.Name.c_str());
    for (size_t MI = 0; MI != 4; ++MI) {
      const MachineModel &Machine = Machines[MI];
      auto C = buildAt(W, OptLevel::Classical, Machine);
      auto V = buildAt(W, OptLevel::Vliw, Machine);
      RunResult RC = runRef(*C, W, Machine);
      RunResult RV = runRef(*V, W, Machine);
      checkSame(RC, RV, W.Name.c_str());
      double S = static_cast<double>(RC.Cycles) /
                 static_cast<double>(RV.Cycles);
      PerMachine[MI].push_back(S);
      std::printf(" %9.1f%%", (S - 1.0) * 100.0);
    }
    std::printf("\n");
  }
  std::printf("%-10s", "geomean");
  for (size_t MI = 0; MI != 4; ++MI)
    std::printf(" %9.1f%%", (geomean(PerMachine[MI]) - 1.0) * 100.0);
  std::printf("\n(paper: similar gains across Power, Power2 and PowerPC "
              "601)\n\n");
  return runRegisteredBenchmarks(Argc, Argv);
}
