//===- bench/bench_code_size.cpp - Experiment E4 -------------------------------===//
///
/// The paper quotes "an average code size increase of 8%" for the VLIW
/// pipeline (unrolling, bookkeeping copies and basic block expansion grow
/// code; combining and unspeculation shrink it). This bench reports static
/// instruction counts per level.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace vsc;

static void BM_CodeSizeQuery(benchmark::State &State) {
  const Workload &W = specWorkloads()[0];
  auto M = buildAt(W, OptLevel::Vliw, rs6000());
  for (auto _ : State)
    benchmark::DoNotOptimize(M->instrCount());
}
BENCHMARK(BM_CodeSizeQuery);

int main(int Argc, char **Argv) {
  std::printf("Static code size (instructions)\n");
  std::printf("%-10s %10s %10s %10s %10s\n", "Benchmark", "none",
              "classical", "vliw", "vliw/cls");
  std::vector<double> Ratios;
  for (const Workload &W : specWorkloads()) {
    auto MN = buildAt(W, OptLevel::None, rs6000());
    auto MC = buildAt(W, OptLevel::Classical, rs6000());
    auto MV = buildAt(W, OptLevel::Vliw, rs6000());
    double Ratio = static_cast<double>(MV->instrCount()) /
                   static_cast<double>(MC->instrCount());
    Ratios.push_back(Ratio);
    std::printf("%-10s %10zu %10zu %10zu %9.0f%%\n", W.Name.c_str(),
                MN->instrCount(), MC->instrCount(), MV->instrCount(),
                (Ratio - 1.0) * 100.0);
  }
  std::printf("%-10s %10s %10s %10s %9.0f%%   (paper: +8%%)\n\n", "geomean",
              "", "", "", (geomean(Ratios) - 1.0) * 100.0);
  return runRegisteredBenchmarks(Argc, Argv);
}
