//===- examples/vsc_asm.cpp - Textual-IR assembler and runner ---------------===//
///
/// Assembles a textual IR file (the syntax the paper's listings translate
/// into — see ir/Parser.h), optionally optimizes it, and runs it or dumps
/// it as VLIW instruction words:
///
///   example_vsc_asm FILE.vir [options] [-- args...]
///     -O2 | -O3            optimize (classical / vliw)
///     --machine=NAME       rs6000 (default), power2, ppc601
///     --emit-ir            print the (optimized) IR
///     --emit-vliw          print each block as VLIW words per cycle
///     --stats              cycles / pathlength / stalls to stderr
///
//===----------------------------------------------------------------------===//

#include "ir/Module.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "sim/Simulator.h"
#include "vliw/Pipeline.h"
#include "vliw/Schedule.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace vsc;

int main(int Argc, char **Argv) {
  if (Argc < 2) {
    std::fprintf(stderr,
                 "usage: %s FILE.vir [-O2|-O3] [--machine=NAME] "
                 "[--emit-ir] [--emit-vliw] [--stats] [-- args...]\n",
                 Argv[0]);
    return 2;
  }
  std::string Path;
  OptLevel Level = OptLevel::None;
  MachineModel Machine = rs6000();
  bool EmitIr = false, EmitVliw = false, Stats = false, InArgs = false;
  std::vector<int64_t> Args;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (InArgs)
      Args.push_back(std::atoll(A.c_str()));
    else if (A == "--")
      InArgs = true;
    else if (A == "-O2")
      Level = OptLevel::Classical;
    else if (A == "-O3")
      Level = OptLevel::Vliw;
    else if (A == "--machine=power2")
      Machine = power2();
    else if (A == "--machine=ppc601")
      Machine = ppc601();
    else if (A == "--machine=rs6000")
      Machine = rs6000();
    else if (A == "--emit-ir")
      EmitIr = true;
    else if (A == "--emit-vliw")
      EmitVliw = true;
    else if (A == "--stats")
      Stats = true;
    else
      Path = A;
  }

  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "cannot open %s\n", Path.c_str());
    return 1;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::string Err;
  auto M = parseModule(Buf.str(), &Err);
  if (!M) {
    std::fprintf(stderr, "%s: %s\n", Path.c_str(), Err.c_str());
    return 1;
  }
  std::string V = verifyModule(*M);
  if (!V.empty()) {
    std::fprintf(stderr, "%s: %s\n", Path.c_str(), V.c_str());
    return 1;
  }

  PipelineOptions Opts;
  Opts.Machine = Machine;
  optimize(*M, Level, Opts);

  if (EmitIr)
    std::fputs(printModule(*M).c_str(), stdout);
  if (EmitVliw) {
    for (const auto &F : M->functions()) {
      std::printf("func %s — VLIW view (%s)\n", F->name().c_str(),
                  Machine.Name.c_str());
      for (const auto &BB : F->blocks())
        std::fputs(formatAsVliw(*BB, Machine).c_str(), stdout);
    }
  }
  if (EmitIr || EmitVliw)
    return 0;

  RunOptions RunOpts;
  RunOpts.Args = Args;
  RunResult R = simulate(*M, Machine, RunOpts);
  std::fputs(R.Output.c_str(), stdout);
  if (R.Trapped) {
    std::fprintf(stderr, "trap: %s\n", R.TrapMsg.c_str());
    return 1;
  }
  if (Stats)
    std::fprintf(stderr, "cycles=%llu instrs=%llu\n",
                 static_cast<unsigned long long>(R.Cycles),
                 static_cast<unsigned long long>(R.DynInstrs));
  return static_cast<int>(R.ExitCode & 0xff);
}
