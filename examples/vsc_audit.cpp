//===- examples/vsc_audit.cpp - Standalone semantic auditor -----------------===//
///
/// Runs every PassAudit checker on a textual IR file, so a pipeline audit
/// failure can be reproduced and bisected outside the compiler:
///
///   example_vsc_audit FILE.vir [options]
///     --machine=NAME       rs6000 (default), power2, ppc601, vliw8
///     --before=FILE.vir    differential mode: FILE is the post-pass state,
///                          --before the pre-pass snapshot (enables the
///                          speculation-safety and back-edge checks).
///                          Caveat: the differential checkers match
///                          instructions by Instr::Id, which the parser
///                          assigns in textual order — so across two
///                          separately written files only in-place rewrites
///                          (same instruction positions) are comparable.
///                          The in-process pipeline harness (--pipeline, or
///                          PipelineOptions::Audit) has stable ids and is
///                          the reliable way to catch code-motion bugs.
///     --pipeline[=LEVEL]   instead of auditing the file as-is, run the
///                          OptLevel::Vliw pipeline over it with the audit
///                          harness at LEVEL (boundaries | full; default
///                          full) — the pipeline aborts on the first finding
///     --oracle[=LEVEL]     additionally run the differential execution
///                          oracle (oracle/ExecOracle.h) at LEVEL
///                          (boundaries | full; default full): every changed
///                          function is executed against its pre-pass
///                          snapshot on a battery of inputs, and the
///                          pipeline aborts with the offending pass, the
///                          reproducing input and an interleaved execution
///                          trace on any divergence. Implies --pipeline.
///     --threads=N          with --pipeline: compile functions on N worker
///                          threads. Boundaries-level checkpoints run at
///                          every thread count; Full-level instrumentation
///                          forces the run serial.
///
/// Exit status: 0 when the audit is clean, 1 when findings were reported,
/// 2 on usage/parse errors.
///
//===----------------------------------------------------------------------===//

#include "audit/PassAudit.h"
#include "ir/Parser.h"
#include "ir/Verifier.h"
#include "vliw/Pipeline.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

using namespace vsc;

namespace {

std::unique_ptr<Module> parseFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "cannot open %s\n", Path.c_str());
    return nullptr;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::string Err;
  auto M = parseModule(Buf.str(), &Err);
  if (!M)
    std::fprintf(stderr, "%s: %s\n", Path.c_str(), Err.c_str());
  return M;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Path, BeforePath;
  MachineModel Machine = rs6000();
  bool RunPipeline = false;
  AuditLevel Level = AuditLevel::Full;
  OracleLevel Oracle = OracleLevel::Off;
  unsigned Threads = 0; // 0 = VSC_THREADS (default 1)
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--machine=rs6000")
      Machine = rs6000();
    else if (A == "--machine=power2")
      Machine = power2();
    else if (A == "--machine=ppc601")
      Machine = ppc601();
    else if (A == "--machine=vliw8")
      Machine = vliw8();
    else if (A.rfind("--before=", 0) == 0)
      BeforePath = A.substr(9);
    else if (A == "--pipeline" || A == "--pipeline=full")
      RunPipeline = true;
    else if (A == "--pipeline=boundaries") {
      RunPipeline = true;
      Level = AuditLevel::Boundaries;
    } else if (A == "--oracle" || A == "--oracle=full") {
      RunPipeline = true;
      Oracle = OracleLevel::Full;
    } else if (A == "--oracle=boundaries") {
      RunPipeline = true;
      Oracle = OracleLevel::Boundaries;
    } else if (A.rfind("--threads=", 0) == 0) {
      Threads = static_cast<unsigned>(std::atoi(A.c_str() + 10));
      if (!Threads) {
        std::fprintf(stderr, "--threads wants a positive count\n");
        return 2;
      }
    } else if (A[0] != '-')
      Path = A;
    else {
      std::fprintf(stderr, "unknown option %s\n", A.c_str());
      return 2;
    }
  }
  if (Path.empty()) {
    std::fprintf(stderr,
                 "usage: %s FILE.vir [--machine=NAME] [--before=FILE.vir] "
                 "[--pipeline[=boundaries|full]] [--oracle[=boundaries|full]] "
                 "[--threads=N]\n",
                 Argv[0]);
    return 2;
  }

  auto M = parseFile(Path);
  if (!M)
    return 2;
  std::unique_ptr<Module> Before;
  if (!BeforePath.empty()) {
    Before = parseFile(BeforePath);
    if (!Before)
      return 2;
  }

  if (RunPipeline) {
    PipelineOptions Opts;
    Opts.Machine = Machine;
    Opts.Audit = Level;
    Opts.Oracle = Oracle;
    Opts.Threads = Threads;
    // The harness aborts with the offending pass + IR diff on a finding.
    optimize(*M, OptLevel::Vliw, Opts);
    if (Oracle != OracleLevel::Off)
      std::printf("%s: pipeline audit (%s) + execution oracle (%s) clean\n",
                  Path.c_str(), auditLevelName(Level),
                  oracleLevelName(Oracle));
    else
      std::printf("%s: pipeline audit (%s) clean\n", Path.c_str(),
                  auditLevelName(Level));
    return 0;
  }

  AuditResult R = auditModule(*M, Machine, Before.get());
  if (R.ok()) {
    std::printf("%s: audit clean (%zu function(s), machine %s%s)\n",
                Path.c_str(), M->functions().size(), Machine.Name.c_str(),
                Before ? ", differential" : "");
    return 0;
  }
  std::fprintf(stderr, "%s: %zu finding(s):\n%s", Path.c_str(),
               R.Findings.size(), R.str().c_str());
  return 1;
}
