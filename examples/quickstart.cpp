//===- examples/quickstart.cpp - Five-minute tour of the library -----------===//
///
/// Compiles a mini-C program, optimizes it at each level, and reports the
/// simulated cycles/pathlength on the RS/6000 machine model:
///
///   $ example_quickstart
///
//===----------------------------------------------------------------------===//

#include "frontend/Frontend.h"
#include "sim/Simulator.h"
#include "vliw/Pipeline.h"

#include <cstdio>

using namespace vsc;

int main() {
  // 1. A small program: dot product with a conditional accumulation.
  const char *Source = R"(
int a[256];
int b[256];
int main(int n) {
  for (int i = 0; i < 256; i++) {
    a[i] = (i * 7) & 255;
    b[i] = (i * 13) & 255;
  }
  int acc = 0;
  for (int pass = 0; pass < n; pass++) {
    for (int i = 0; i < 256; i++) {
      int p = a[i] * b[i];
      if (p & 1) acc += p;
    }
  }
  print_int(acc);
  return 0;
}
)";

  // 2. Compile to the POWER-flavoured IR.
  FrontendOptions FeOpts;
  FeOpts.AssumeSafeLoads = true; // page-zero-readable target
  CompileResult Compiled = compileMiniC(Source, FeOpts);
  if (!Compiled.ok()) {
    std::fprintf(stderr, "compile error: %s\n", Compiled.Error.c_str());
    return 1;
  }

  // 3. Optimize at each level and simulate.
  std::printf("%-10s %12s %12s %12s\n", "level", "cycles", "instrs",
              "output");
  MachineModel Machine = rs6000();
  for (OptLevel L :
       {OptLevel::None, OptLevel::Classical, OptLevel::Vliw}) {
    CompileResult R = compileMiniC(Source, FeOpts);
    optimize(*R.M, L);
    RunOptions Input;
    Input.Args = {10};
    RunResult Run = simulate(*R.M, Machine, Input);
    if (Run.Trapped) {
      std::fprintf(stderr, "trap: %s\n", Run.TrapMsg.c_str());
      return 1;
    }
    std::string Out = Run.Output;
    if (!Out.empty() && Out.back() == '\n')
      Out.pop_back();
    std::printf("%-10s %12llu %12llu %12s\n", optLevelName(L),
                static_cast<unsigned long long>(Run.Cycles),
                static_cast<unsigned long long>(Run.DynInstrs),
                Out.c_str());
  }
  std::printf("\nThe 'vliw' row uses the paper's techniques: speculative "
              "load/store motion,\nunspeculation, unrolling + renaming, "
              "global + pipeline scheduling, limited\ncombining, basic "
              "block expansion and tailored prologs.\n");
  return 0;
}
