//===- examples/vscd.cpp - The compile service as a daemon-style tool -------===//
///
/// Reads newline-delimited requests (service/Protocol.h grammar), serves
/// them through one CompileService, and writes one response line per
/// request, in request order:
///
///   example_vscd [--requests=FILE|-] [--out=FILE] [--threads=N]
///                [--cache-mb=N] [--stats]
///
///     --requests=FILE   request stream (default "-": stdin; a FIFO works,
///                       requests are served when the writer closes it)
///     --out=FILE        response stream (default stdout)
///     --threads=N       outer request-group workers (default VSC_THREADS)
///     --cache-mb=N      artifact-cache byte budget (default 256)
///     --stats           per-class cache table on stderr afterwards
///
/// Responses are byte-identical for a given request stream regardless of
/// --threads, request order, or what is already cached — scripts/ci.sh
/// smoke-checks this, plus a cross-process profile handoff (save-profile
/// here, guided compile in a second process).
///
//===----------------------------------------------------------------------===//

#include "service/Protocol.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace vsc;

static int usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s [--requests=FILE|-] [--out=FILE] [--threads=N] "
               "[--cache-mb=N] [--stats]\n",
               Prog);
  return 2;
}

int main(int Argc, char **Argv) {
  std::string RequestPath = "-";
  std::string OutPath;
  bool Stats = false;
  CompileService::Config Cfg;

  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A.rfind("--requests=", 0) == 0) {
      RequestPath = A.substr(11);
    } else if (A.rfind("--out=", 0) == 0) {
      OutPath = A.substr(6);
    } else if (A.rfind("--threads=", 0) == 0) {
      int N = std::atoi(A.c_str() + 10);
      if (N <= 0)
        return usage(Argv[0]);
      Cfg.Threads = static_cast<unsigned>(N);
    } else if (A.rfind("--cache-mb=", 0) == 0) {
      int N = std::atoi(A.c_str() + 11);
      if (N <= 0)
        return usage(Argv[0]);
      Cfg.CacheBytes = static_cast<size_t>(N) << 20;
    } else if (A == "--stats") {
      Stats = true;
    } else {
      return usage(Argv[0]);
    }
  }

  std::ifstream FileIn;
  if (RequestPath != "-") {
    FileIn.open(RequestPath);
    if (!FileIn) {
      std::fprintf(stderr, "cannot open %s\n", RequestPath.c_str());
      return 1;
    }
  }
  std::istream &In = RequestPath == "-" ? std::cin : FileIn;

  // Parse the whole stream first: parse errors become error responses in
  // place, so the output stays one line per request line.
  ParsedRequestStream Parsed = parseRequestStream(In);

  CompileService Service(Cfg);
  std::vector<ServiceResponse> Served = Service.handleBatch(Parsed.Requests);

  std::ofstream FileOut;
  if (!OutPath.empty()) {
    FileOut.open(OutPath);
    if (!FileOut) {
      std::fprintf(stderr, "cannot open %s\n", OutPath.c_str());
      return 1;
    }
  }
  std::ostream &Out = OutPath.empty() ? std::cout : FileOut;

  int Failures = 0;
  for (int S : Parsed.Slot) {
    const ServiceResponse &R =
        S >= 0 ? Served[static_cast<size_t>(S)]
               : Parsed.ParseErrors[static_cast<size_t>(-S - 1)];
    if (!R.Ok)
      ++Failures;
    Out << renderResponse(R);
  }
  Out.flush();

  if (Stats) {
    const ArtifactCache &C = Service.cache();
    std::fprintf(stderr, "%-12s %8s %8s %8s %8s\n", "class", "hits",
                 "misses", "evicted", "rejected");
    for (size_t I = 0;
         I != static_cast<size_t>(ArtifactClass::NumClasses); ++I) {
      ArtifactClass AC = static_cast<ArtifactClass>(I);
      ArtifactClassStats S = C.stats(AC);
      if (!S.Hits && !S.Misses && !S.Evictions && !S.Rejections)
        continue;
      std::fprintf(stderr, "%-12s %8llu %8llu %8llu %8llu\n",
                   artifactClassName(AC),
                   static_cast<unsigned long long>(S.Hits),
                   static_cast<unsigned long long>(S.Misses),
                   static_cast<unsigned long long>(S.Evictions),
                   static_cast<unsigned long long>(S.Rejections));
    }
    std::fprintf(stderr,
                 "groups=%llu cache-bytes=%zu entries=%zu failures=%d\n",
                 static_cast<unsigned long long>(Service.groupsFormed()),
                 C.bytesUsed(), C.entryCount(), Failures);
  }
  return Failures ? 1 : 0;
}
