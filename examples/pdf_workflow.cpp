//===- examples/pdf_workflow.cpp - Profile-directed feedback, end to end ----===//
///
/// The paper's PDF workflow on the ProfileStore subsystem (src/pdf/):
/// train on the short input, feed the profile back into the pipeline,
/// measure on the reference input. Profiles are first-class artifacts —
/// they can be saved, merged across processes, and loaded again (by this
/// tool or by vscc):
///
///   example_pdf_workflow [options]
///     --workload=NAME        kernel to run (default eqntott)
///     --counters             use the paper's two-pass low-overhead
///                            counting scheme instead of exact dense
///                            counters (exact is the default)
///     --superblocks          superblock formation in the guided compile
///     --threads=N            battery/pipeline workers (default
///                            VSC_THREADS)
///     --save-profile=FILE    persist the merged dense profile
///     --load-profile=FILE    feed a persisted profile back instead of
///                            training (repeatable with --merge)
///     --merge                merge multiple --load-profile files; with
///                            --save-profile, also merge into an existing
///                            file instead of overwriting it
///     --emit-source=FILE     write the kernel's mini-C source (so vscc
///                            can compile the identical module and
///                            consume the saved profile)
///
//===----------------------------------------------------------------------===//

#include "pdf/PdfExperiment.h"
#include "workloads/Registry.h"

#include <cstdio>
#include <cstring>
#include <fstream>

using namespace vsc;

static int usage() {
  std::fprintf(stderr,
               "usage: example_pdf_workflow [--workload=NAME] [--counters] "
               "[--superblocks] [--threads=N] [--save-profile=FILE] "
               "[--load-profile=FILE]... [--merge] [--emit-source=FILE]\n");
  return 2;
}

static const char *gateName(int Kept) {
  return Kept < 0 ? "unconditional" : Kept ? "kept" : "rolled-back";
}

int main(int Argc, char **Argv) {
  std::string WorkloadName = "eqntott";
  std::string SavePath, EmitSource;
  std::vector<std::string> LoadPaths;
  bool Counters = false, Merge = false, Superblocks = false;
  unsigned Threads = 0;

  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A.rfind("--workload=", 0) == 0)
      WorkloadName = A.substr(11);
    else if (A == "--counters")
      Counters = true;
    else if (A == "--superblocks")
      Superblocks = true;
    else if (A == "--merge")
      Merge = true;
    else if (A.rfind("--threads=", 0) == 0)
      Threads = static_cast<unsigned>(std::atoi(A.c_str() + 10));
    else if (A.rfind("--save-profile=", 0) == 0)
      SavePath = A.substr(15);
    else if (A.rfind("--load-profile=", 0) == 0)
      LoadPaths.push_back(A.substr(15));
    else if (A.rfind("--emit-source=", 0) == 0)
      EmitSource = A.substr(14);
    else
      return usage();
  }
  if (LoadPaths.size() > 1 && !Merge) {
    std::fprintf(stderr,
                 "multiple --load-profile files need --merge\n");
    return 2;
  }
  if (Counters && (!SavePath.empty() || !LoadPaths.empty())) {
    std::fprintf(stderr, "--counters profiles are inferred, not dense; "
                         "save/load need the exact source\n");
    return 2;
  }

  const Workload *W = workloads::findKernel(WorkloadName);
  if (!W) {
    std::fprintf(stderr, "unknown workload '%s' (kernels:",
                 WorkloadName.c_str());
    for (const Workload &Cand : workloads::allKernels())
      std::fprintf(stderr, " %s", Cand.Name.c_str());
    std::fprintf(stderr, ")\n");
    return 2;
  }
  std::printf("PDF workflow on the %s kernel\n\n", W->Name.c_str());

  if (!EmitSource.empty()) {
    std::ofstream Out(EmitSource);
    Out << W->Source;
    if (!Out.flush()) {
      std::fprintf(stderr, "cannot write %s\n", EmitSource.c_str());
      return 1;
    }
    std::printf("wrote kernel source to %s\n", EmitSource.c_str());
  }

  auto Source = buildWorkload(*W);

  // A persisted profile replaces training when supplied.
  DenseProfile Loaded;
  PdfExperimentOptions Opts;
  Opts.Train = {workloadInput(W->TrainScale)};
  Opts.Test = {workloadInput(W->RefScale)};
  Opts.Threads = Threads;
  Opts.Superblocks = Superblocks;
  Opts.ProfileSource = Counters ? PdfExperimentOptions::Source::Counters
                                : PdfExperimentOptions::Source::Exact;
  if (!LoadPaths.empty()) {
    for (size_t I = 0; I != LoadPaths.size(); ++I) {
      DenseProfile One;
      std::string Err = DenseProfile::loadFile(LoadPaths[I], One);
      if (Err.empty() && I)
        Err = Loaded.merge(One);
      else if (Err.empty())
        Loaded = std::move(One);
      if (!Err.empty()) {
        std::fprintf(stderr, "%s: %s\n", LoadPaths[I].c_str(),
                     Err.c_str());
        return 1;
      }
    }
    Opts.LoadedProfile = &Loaded;
    std::printf("pass 1: skipped — loaded profile from %zu file(s)\n",
                LoadPaths.size());
  } else if (Counters) {
    std::printf("pass 1: two-pass counting scheme on the short input "
                "(scale %lld)\n", static_cast<long long>(W->TrainScale));
  } else {
    std::printf("pass 1: exact dense counters on the short input "
                "(scale %lld)\n", static_cast<long long>(W->TrainScale));
  }

  PdfExperimentResult R = runPdfExperiment(*Source, Opts);
  if (!R.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n", R.Error.c_str());
    return 1;
  }
  std::printf("pass 2: profile carries %zu block counts and %zu edge "
              "counts\n",
              R.Feedback.BlockCount.size(), R.Feedback.EdgeCount.size());
  std::printf("pdf-layout: %s\n", gateName(R.PdfLayoutKept));

  if (!SavePath.empty()) {
    DenseProfile ToSave = R.Profile;
    if (Merge) {
      DenseProfile Old;
      std::string Err = DenseProfile::loadFile(SavePath, Old);
      if (Err.empty())
        Err = Old.merge(ToSave);
      if (Err.empty())
        ToSave = std::move(Old);
      else if (Err.rfind("cannot open", 0) != 0) {
        std::fprintf(stderr, "%s: %s\n", SavePath.c_str(), Err.c_str());
        return 1;
      }
    }
    std::string Err = ToSave.saveFile(SavePath);
    if (!Err.empty()) {
      std::fprintf(stderr, "%s\n", Err.c_str());
      return 1;
    }
    std::printf("saved profile to %s (%zu block slots, %zu edge slots)\n",
                SavePath.c_str(), ToSave.BlockCounts.size(),
                ToSave.EdgeCounts.size());
  }

  std::printf("\nreference input: vliw %llu cycles, vliw+pdf %llu cycles "
              "(%+.1f%%)\n",
              static_cast<unsigned long long>(R.BaselineCycles),
              static_cast<unsigned long long>(R.GuidedCycles),
              (R.gain() - 1.0) * 100.0);
  return 0;
}
