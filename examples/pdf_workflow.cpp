//===- examples/pdf_workflow.cpp - Two-pass profile-directed feedback -------===//
///
/// The paper's PDF workflow, end to end:
///
///   pass 1: plan counter placement (constraint propagation), insert
///           counting code, hoist counter loads/stores out of loops, run
///           on the training input;
///   pass 2: read the counts back at the same places, infer every block
///           and edge count, and re-optimize with profile-directed
///           scheduling heuristics, block reordering and branch reversal.
///
//===----------------------------------------------------------------------===//

#include "profile/Counters.h"
#include "sim/Simulator.h"
#include "vliw/Pipeline.h"
#include "workloads/Spec.h"

#include <cstdio>

using namespace vsc;

int main() {
  const Workload &W = specWorkloads()[2]; // eqntott, the paper's example
  std::printf("PDF workflow on the %s kernel\n\n", W.Name.c_str());

  // Pass 1: instrument a throwaway copy and run the short input.
  auto Train = buildWorkload(W);
  Instrumentation Info = instrumentModule(*Train, /*HoistCounters=*/true);
  std::printf("pass 1: counting %zu of the program's basic blocks\n",
              Info.SlotKeys.size());
  RunOptions TrainInput = workloadInput(W.TrainScale);
  TrainInput.KeepMemory = true;
  RunResult TrainRun = simulate(*Train, rs6000(), TrainInput);
  auto Counts = readCounters(TrainRun, Info);
  std::printf("pass 1: training run took %llu cycles; sample counts:\n",
              static_cast<unsigned long long>(TrainRun.Cycles));
  int Shown = 0;
  for (const auto &[Key, Val] : Counts) {
    if (Shown++ == 4)
      break;
    std::printf("         %-24s %llu\n", Key.c_str(),
                static_cast<unsigned long long>(Val));
  }

  // Pass 2: identical flow-graph surgery, inference, guided optimization.
  auto Target = buildWorkload(W);
  ProfileData Profile;
  for (auto &F : Target->functions()) {
    planCounters(*F);
    std::string Err = inferCounts(*F, Counts, Profile);
    if (!Err.empty()) {
      std::fprintf(stderr, "inference failed: %s\n", Err.c_str());
      return 1;
    }
  }
  std::printf("pass 2: inferred %zu block counts and %zu edge counts\n",
              Profile.BlockCount.size(), Profile.EdgeCount.size());

  PipelineOptions Guided;
  Guided.Profile = &Profile;
  optimize(*Target, OptLevel::Vliw, Guided);

  // Compare with the unguided pipeline on the reference input.
  auto Plain = buildWorkload(W);
  optimize(*Plain, OptLevel::Vliw);
  RunOptions Ref = workloadInput(W.RefScale);
  RunResult RPlain = simulate(*Plain, rs6000(), Ref);
  RunResult RGuided = simulate(*Target, rs6000(), Ref);
  if (RPlain.fingerprint() != RGuided.fingerprint()) {
    std::fprintf(stderr, "behaviour diverged!\n");
    return 1;
  }
  std::printf("\nreference input: vliw %llu cycles, vliw+pdf %llu cycles "
              "(%+.1f%%)\n",
              static_cast<unsigned long long>(RPlain.Cycles),
              static_cast<unsigned long long>(RGuided.Cycles),
              (static_cast<double>(RPlain.Cycles) / RGuided.Cycles - 1.0) *
                  100.0);
  return 0;
}
