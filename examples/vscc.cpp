//===- examples/vscc.cpp - Command-line mini-C compiler driver --------------===//
///
/// The "real tool": compiles a mini-C file, optimizes it, and either dumps
/// the IR or runs it on a machine model.
///
///   example_vscc FILE.c [options] [-- args...]
///     -O0 | -O2 | -O3      optimization level (none/classical/vliw; -O3)
///     --machine=NAME       rs6000 (default), power2, ppc601
///     --pdf                profile on the same inputs first, then apply
///                          profile-directed feedback
///     --save-profile=FILE  record an exact dense profile of the program
///                          on the given args and persist it (pdf/
///                          ProfileStore.h binary format)
///     --load-profile=FILE  feed a persisted profile back (repeatable
///                          with --merge); stale profiles are rejected
///                          by CFG fingerprint
///     --merge              merge multiple --load-profile files; with
///                          --save-profile, merge into an existing file
///     --superblocks        profile-driven superblock formation
///     --exact-pipeline=M   off (default), grade, apply: run the exact
///                          modulo scheduler per innermost loop; grade
///                          reports achieved-II vs min-II vs exact-II,
///                          apply substitutes winning exact kernels
///     --inline             inline small leaf functions first
///     --regalloc           run linear-scan register allocation
///     --threads=N          compile functions on N worker threads (output
///                          is byte-identical for every N; default 1, or
///                          the VSC_THREADS environment variable)
///     --emit-ir            print the optimized IR instead of running
///     --stats              print cycles / pathlength / stall breakdown
///     -- A B C             integer arguments passed to main()
///
//===----------------------------------------------------------------------===//

#include "audit/PassAudit.h" // cloneModule
#include "frontend/Frontend.h"
#include "ir/Printer.h"
#include "pdf/ProfileStore.h"
#include "profile/Counters.h"
#include "sim/Simulator.h"
#include "vliw/Pipeline.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace vsc;

static int usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s FILE.c [-O0|-O2|-O3] [--machine=NAME] [--pdf] "
               "[--save-profile=FILE] [--load-profile=FILE]... [--merge] "
               "[--superblocks] [--exact-pipeline=off|grade|apply] "
               "[--threads=N] [--emit-ir] [--stats] "
               "[-- args...]\n",
               Prog);
  return 2;
}

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage(Argv[0]);

  std::string Path;
  OptLevel Level = OptLevel::Vliw;
  MachineModel Machine = rs6000();
  bool EmitIr = false, Stats = false, Pdf = false;
  bool DoInline = false, DoRegalloc = false;
  bool Merge = false, Superblocks = false;
  ExactPipelineMode ExactMode = ExactPipelineMode::Off;
  std::string SaveProfile;
  std::vector<std::string> LoadProfiles;
  unsigned Threads = 0; // 0 = VSC_THREADS (default 1)
  std::vector<int64_t> Args;
  bool InArgs = false;

  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (InArgs) {
      Args.push_back(std::atoll(A.c_str()));
    } else if (A == "--") {
      InArgs = true;
    } else if (A == "-O0") {
      Level = OptLevel::None;
    } else if (A == "-O2") {
      Level = OptLevel::Classical;
    } else if (A == "-O3") {
      Level = OptLevel::Vliw;
    } else if (A.rfind("--machine=", 0) == 0) {
      std::string Name = A.substr(10);
      if (Name == "rs6000")
        Machine = rs6000();
      else if (Name == "power2")
        Machine = power2();
      else if (Name == "ppc601")
        Machine = ppc601();
      else {
        std::fprintf(stderr, "unknown machine '%s'\n", Name.c_str());
        return 2;
      }
    } else if (A == "--pdf") {
      Pdf = true;
    } else if (A.rfind("--save-profile=", 0) == 0) {
      SaveProfile = A.substr(15);
    } else if (A.rfind("--load-profile=", 0) == 0) {
      LoadProfiles.push_back(A.substr(15));
    } else if (A == "--merge") {
      Merge = true;
    } else if (A == "--superblocks") {
      Superblocks = true;
    } else if (A.rfind("--exact-pipeline=", 0) == 0) {
      std::string Mode = A.substr(17);
      if (Mode == "off")
        ExactMode = ExactPipelineMode::Off;
      else if (Mode == "grade")
        ExactMode = ExactPipelineMode::Grade;
      else if (Mode == "apply")
        ExactMode = ExactPipelineMode::Apply;
      else {
        std::fprintf(stderr, "unknown exact-pipeline mode '%s'\n",
                     Mode.c_str());
        return 2;
      }
    } else if (A == "--inline") {
      DoInline = true;
    } else if (A == "--regalloc") {
      DoRegalloc = true;
    } else if (A.rfind("--threads=", 0) == 0) {
      Threads = static_cast<unsigned>(std::atoi(A.c_str() + 10));
      if (!Threads) {
        std::fprintf(stderr, "--threads wants a positive count\n");
        return 2;
      }
    } else if (A == "--emit-ir") {
      EmitIr = true;
    } else if (A == "--stats") {
      Stats = true;
    } else if (!A.empty() && A[0] == '-') {
      return usage(Argv[0]);
    } else {
      Path = A;
    }
  }
  if (Path.empty())
    return usage(Argv[0]);

  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "cannot open %s\n", Path.c_str());
    return 1;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::string Source = Buf.str();

  FrontendOptions FeOpts;
  FeOpts.AssumeSafeLoads = true;
  CompileResult Compiled = compileMiniC(Source, FeOpts);
  if (!Compiled.ok()) {
    std::fprintf(stderr, "%s: %s\n", Path.c_str(),
                 Compiled.Error.c_str());
    return 1;
  }

  if (Pdf && !LoadProfiles.empty()) {
    std::fprintf(stderr, "--pdf and --load-profile are exclusive\n");
    return 2;
  }
  if (LoadProfiles.size() > 1 && !Merge) {
    std::fprintf(stderr, "multiple --load-profile files need --merge\n");
    return 2;
  }

  PipelineOptions Opts;
  Opts.Machine = Machine;
  Opts.Inlining = DoInline;
  Opts.AllocateRegisters = DoRegalloc;
  Opts.Threads = Threads;
  Opts.Superblocks = Superblocks;
  Opts.ExactPipelining = ExactMode;
  PipelineStats PStats;
  Opts.Stats = &PStats;
  ProfileData Profile;
  RunOptions TrainOpts;
  TrainOpts.Args = Args;

  // Exact dense profile of the program on the run args; with --merge an
  // existing file accumulates across processes. Recorded from a run-ready
  // clone (prolog insertion only — the raw module would misread its
  // arguments); the CFG fingerprint is invariant under that preparation.
  if (!SaveProfile.empty()) {
    auto Prepared = cloneModule(*Compiled.M);
    optimize(*Prepared, OptLevel::None);
    SimEngine Engine(*Prepared, Machine);
    std::string Err;
    DenseProfile P =
        collectDenseProfile(Engine, {TrainOpts}, Threads, &Err);
    if (!Err.empty()) {
      std::fprintf(stderr, "profile collection: %s\n", Err.c_str());
      return 1;
    }
    if (Merge) {
      DenseProfile Old;
      std::string LoadErr = DenseProfile::loadFile(SaveProfile, Old);
      if (LoadErr.empty()) {
        if (!(Err = Old.merge(P)).empty()) {
          std::fprintf(stderr, "%s: %s\n", SaveProfile.c_str(),
                       Err.c_str());
          return 1;
        }
        P = std::move(Old);
      } else if (LoadErr.rfind("cannot open", 0) != 0) {
        std::fprintf(stderr, "%s: %s\n", SaveProfile.c_str(),
                     LoadErr.c_str());
        return 1;
      }
    }
    if (!(Err = P.saveFile(SaveProfile)).empty()) {
      std::fprintf(stderr, "%s\n", Err.c_str());
      return 1;
    }
  }

  DenseProfile Loaded;
  if (!LoadProfiles.empty()) {
    for (size_t I = 0; I != LoadProfiles.size(); ++I) {
      DenseProfile One;
      std::string Err = DenseProfile::loadFile(LoadProfiles[I], One);
      if (Err.empty() && I)
        Err = Loaded.merge(One);
      else if (Err.empty())
        Loaded = std::move(One);
      if (!Err.empty()) {
        std::fprintf(stderr, "%s: %s\n", LoadProfiles[I].c_str(),
                     Err.c_str());
        return 1;
      }
    }
    std::string Stale = Loaded.validateFor(*Compiled.M);
    if (!Stale.empty()) {
      std::fprintf(stderr, "%s\n", Stale.c_str());
      return 1;
    }
    Profile = Loaded.toProfileData();
    Opts.Profile = &Profile;
    Opts.TrainInput = &TrainOpts; // measured layout gate
  }
  if (Pdf) {
    CompileResult Train = compileMiniC(Source, FeOpts);
    Profile = collectProfile(*Train.M, *Compiled.M, Machine, TrainOpts);
    Opts.Profile = &Profile;
    Opts.TrainInput = &TrainOpts; // measured layout gate
  }
  optimize(*Compiled.M, Level, Opts);
  if (ExactMode != ExactPipelineMode::Off) {
    for (const LoopPipelineRecord &R : PStats.PipelineLoops)
      std::fprintf(stderr,
                   "exact-pipeline: %s/%s body=%u min-II=%u heuristic-II=%u "
                   "exact-II=%u verdict=%s%s\n",
                   R.Function.c_str(), R.Header.c_str(), R.BodyInstrs,
                   R.minII(), R.HeuristicII, R.ExactII,
                   exactVerdictName(R.Verdict),
                   R.Applied ? " applied" : "");
  }
  if (Opts.Profile)
    std::fprintf(stderr, "pdf-layout: %s\n",
                 PStats.PdfLayoutKept < 0 ? "unconditional"
                 : PStats.PdfLayoutKept  ? "kept"
                                         : "rolled-back");

  if (EmitIr) {
    std::fputs(printModule(*Compiled.M).c_str(), stdout);
    return 0;
  }

  RunOptions RunOpts;
  RunOpts.Args = Args;
  RunResult R = simulate(*Compiled.M, Machine, RunOpts);
  std::fputs(R.Output.c_str(), stdout);
  if (R.Trapped) {
    std::fprintf(stderr, "trap: %s\n", R.TrapMsg.c_str());
    return 1;
  }
  if (Stats) {
    std::fprintf(stderr,
                 "[%s, %s] cycles=%llu instrs=%llu ipc=%.2f "
                 "operand-stalls=%llu branch-stalls=%llu\n",
                 optLevelName(Level), Machine.Name.c_str(),
                 static_cast<unsigned long long>(R.Cycles),
                 static_cast<unsigned long long>(R.DynInstrs),
                 static_cast<double>(R.DynInstrs) /
                     static_cast<double>(R.Cycles ? R.Cycles : 1),
                 static_cast<unsigned long long>(R.OperandStallCycles),
                 static_cast<unsigned long long>(R.BranchStallCycles));
  }
  return static_cast<int>(R.ExitCode & 0xff);
}
