//===- examples/xlygetvalue_tour.cpp - The paper's worked example -----------===//
///
/// Walks the SPEC li xlygetvalue inner loop through the paper's stages,
/// printing the IR after each one and the measured cycles per iteration:
/// 11 originally, ~7 after global scheduling, ~5-6 with software
/// pipelining (paper: 11, 14/2, 10/2).
///
//===----------------------------------------------------------------------===//

#include "cfg/CfgEdit.h"
#include "ir/Printer.h"
#include "sim/Simulator.h"
#include "vliw/Rename.h"
#include "vliw/Schedule.h"
#include "vliw/Unroll.h"
#include "workloads/LiKernel.h"

#include <cstdio>

using namespace vsc;

static double cyclesPerIter(void (*Apply)(Module &)) {
  auto M1 = buildLiSearch(64);
  auto M2 = buildLiSearch(128);
  Apply(*M1);
  Apply(*M2);
  RunResult R1 = simulate(*M1, rs6000());
  RunResult R2 = simulate(*M2, rs6000());
  return static_cast<double>(R2.Cycles - R1.Cycles) / 64.0;
}

static void show(const char *Title, void (*Apply)(Module &)) {
  auto M = buildLiSearch(8);
  Apply(*M);
  std::printf("=== %s — %.2f cycles/iteration ===\n%s\n", Title,
              cyclesPerIter(Apply),
              printFunction(*M->findFunction("xlygetvalue")).c_str());
}

int main() {
  std::printf("The paper's worked example: SPEC li, xlygetvalue\n\n");

  show("original (paper: 11 cycles/iter)", [](Module &) {});

  show("global scheduling (paper: 14 cycles / 2 iters)", [](Module &M) {
    Function &F = *M.findFunction("xlygetvalue");
    globalSchedule(F, rs6000(), M);
    straighten(F);
  });

  show("unroll + rename + global scheduling", [](Module &M) {
    Function &F = *M.findFunction("xlygetvalue");
    unrollInnermostLoops(F, 2);
    straighten(F);
    renameInnermostLoops(F);
    globalSchedule(F, rs6000(), M);
    straighten(F);
  });

  show("+ enhanced pipeline scheduling (paper: 10 cycles / 2 iters)",
       [](Module &M) {
         Function &F = *M.findFunction("xlygetvalue");
         unrollInnermostLoops(F, 2);
         straighten(F);
         renameInnermostLoops(F);
         pipelineInnermostLoops(F, rs6000(), M);
         globalSchedule(F, rs6000(), M);
         straighten(F);
       });

  // The paper's framing made visible: the scheduled loop viewed as the
  // VLIW instruction words the machine model would issue.
  {
    auto M = buildLiSearch(8);
    Function &F = *M->findFunction("xlygetvalue");
    unrollInnermostLoops(F, 2);
    straighten(F);
    renameInnermostLoops(F);
    pipelineInnermostLoops(F, rs6000(), *M);
    globalSchedule(F, rs6000(), *M);
    straighten(F);
    std::printf("=== the pipelined loop as VLIW words (rs6000 issue "
                "rules) ===\n");
    for (const auto &BB : F.blocks())
      std::fputs(formatAsVliw(*BB, rs6000()).c_str(), stdout);
    std::printf("\n");
  }

  std::printf("Note the software-pipelined version: the next iteration's "
              "loads issue before\nthe current iteration's exit tests "
              "resolve, exactly as in the paper's final\nlisting.\n");
  return 0;
}
