#!/usr/bin/env bash
# Benchmark entry point: build the default configuration and run the
# oracle-overhead benchmark, leaving its google-benchmark JSON at the repo
# root as BENCH_oracle.json (the human-readable table goes to stdout).
#
#   scripts/bench.sh [JOBS]
set -euo pipefail

JOBS="${1:-$(nproc)}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

cmake -B "$ROOT/build" -S "$ROOT"
cmake --build "$ROOT/build" -j "$JOBS" --target bench_oracle_overhead

"$ROOT/build/bench/bench_oracle_overhead" \
  --benchmark_out="$ROOT/BENCH_oracle.json" \
  --benchmark_out_format=json

echo "wrote $ROOT/BENCH_oracle.json"
