#!/usr/bin/env bash
# Benchmark entry point: build the default configuration and run the
# oracle-overhead, compile-time, simulator and PDF benchmarks, leaving
# google-benchmark JSON at the repo root as BENCH_oracle.json plus the
# parallel-driver thread sweep as BENCH_compile_parallel.json, the
# legacy-vs-predecoded simulator comparison as BENCH_sim.json, the
# legacy-vs-ProfileStore PDF experiment comparison as BENCH_pdf.json, the
# syntactic-vs-flow-sensitive disambiguation-rate and cycle table as
# BENCH_alias.json, the exact-pipelining optimality-gap table (per-loop
# achieved-II vs min-II vs exact-II over every kernel x machine) as
# BENCH_pipelining.json, and the full per-kernel measurement matrix (every
# registered kernel x O0/Classical/Vliw x three machine models, with and
# without PDF) as BENCH_workloads.json, and the compile-service cold-vs-
# warm-cache throughput with per-class hit rates as BENCH_service.json
# (human-readable tables go to stdout).
#
#   scripts/bench.sh [JOBS]
set -euo pipefail

JOBS="${1:-$(nproc)}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

cmake -B "$ROOT/build" -S "$ROOT"
cmake --build "$ROOT/build" -j "$JOBS" \
  --target bench_oracle_overhead --target bench_compile_time \
  --target bench_sim --target bench_pdf_gain --target bench_alias \
  --target bench_pipelining --target bench_workloads --target bench_service

"$ROOT/build/bench/bench_oracle_overhead" \
  --benchmark_out="$ROOT/BENCH_oracle.json" \
  --benchmark_out_format=json

"$ROOT/build/bench/bench_compile_time" \
  --parallel-out="$ROOT/BENCH_compile_parallel.json" \
  --benchmark_filter='^$'

"$ROOT/build/bench/bench_sim" \
  --sim-out="$ROOT/BENCH_sim.json" \
  --benchmark_filter='^$'

# End-to-end PDF experiment, pre-PR shape vs ProfileStore, at 4 workers.
VSC_THREADS=4 "$ROOT/build/bench/bench_pdf_gain" \
  --pdf-out="$ROOT/BENCH_pdf.json" \
  --benchmark_filter='^$'

# Disambiguation-rate table: syntactic vs flow-sensitive tier, annotated
# vs symbol-stripped front ends, plus the end-to-end cycle delta.
"$ROOT/build/bench/bench_alias" \
  --alias-out="$ROOT/BENCH_alias.json" \
  --benchmark_filter='^$'

# Exact-pipelining optimality gap: every kernel x rs6000/power2/ppc601
# compiled in Apply mode; per-loop achieved-II/min-II/exact-II records,
# gap geomean, and the audited thread-invariance check on the first
# kernel where Apply beats the heuristic.
"$ROOT/build/bench/bench_pipelining" \
  --pipelining-out="$ROOT/BENCH_pipelining.json" \
  --benchmark_filter='^$'

# Full per-kernel matrix over the registry (spec six + irregular five):
# cycles at every opt level on every machine model, with and without PDF,
# including the measured layout-gate decision per cell.
"$ROOT/build/bench/bench_workloads" \
  --workloads-out="$ROOT/BENCH_workloads.json" \
  --benchmark_filter='^$'

# Compile-service throughput: a seeded request stream served cold then
# warm by one service; asserts byte-identical responses and the 3x
# warm-cache floor, and reports per-class hit rates.
"$ROOT/build/bench/bench_service" \
  --service-out="$ROOT/BENCH_service.json"

echo "wrote $ROOT/BENCH_oracle.json"
echo "wrote $ROOT/BENCH_compile_parallel.json"
echo "wrote $ROOT/BENCH_sim.json"
echo "wrote $ROOT/BENCH_pdf.json"
echo "wrote $ROOT/BENCH_alias.json"
echo "wrote $ROOT/BENCH_pipelining.json"
echo "wrote $ROOT/BENCH_workloads.json"
echo "wrote $ROOT/BENCH_service.json"
