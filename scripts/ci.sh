#!/usr/bin/env bash
# CI entry point: build the default and the ASan+UBSan configurations and
# run the full test suite under both, at VSC_THREADS=1 and VSC_THREADS=4
# (the parallel per-function driver must be byte-identical and
# divergence-free at every thread count — the sanitize x threads=4 cell
# doubles as the data-race check). Each configuration then re-runs the
# fuzz suite — which carries the semantic audits, the differential
# execution oracle at Boundaries level, and the alias audit (every NoAlias
# claim the pipeline issues is validated against the addresses the
# simulator actually touches) — on a shifted VSC_FUZZ_SEED, so every CI
# run also validates the pipeline on 40 programs no previous run has
# seen, with the analysis-cache recompute-and-compare checker forced on
# (VSC_CHECK_ANALYSES=1). Finally each configuration runs the simulator
# fast-path differential + oracle suites in both dispatch flavours
# (VSC_DISPATCH=threaded and =switch) and the alias-analysis/audit suites
# explicitly; a third, switch-only build (-DVSC_COMPUTED_GOTO=OFF) proves
# the threaded loop is never a correctness dependency.
#
#   scripts/ci.sh [JOBS]
#
# Exits non-zero on the first failing build or test run.
set -euo pipefail

JOBS="${1:-$(nproc)}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
# Fresh fuzz programs per day; override with VSC_FUZZ_SEED=N scripts/ci.sh.
FUZZ_SEED="${VSC_FUZZ_SEED:-$(( $(date +%Y%m%d) * 100 ))}"

run_config() {
  local name="$1" dir="$2"
  shift 2
  echo "=== [$name] configure ==="
  cmake -B "$dir" -S "$ROOT" "$@"
  echo "=== [$name] build ==="
  cmake --build "$dir" -j "$JOBS"
  for threads in 1 4; do
    echo "=== [$name] ctest, VSC_THREADS=$threads ==="
    VSC_THREADS="$threads" \
      ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
  done
  echo "=== [$name] oracle+alias-audit fuzz + analysis checking, seed base $FUZZ_SEED ==="
  VSC_FUZZ_SEED="$FUZZ_SEED" VSC_CHECK_ANALYSES=1 \
    ctest --test-dir "$dir" --output-on-failure -j "$JOBS" -R Fuzz
  # The flow-sensitive alias tier and its dynamic audit are the soundness
  # backbone of every disambiguation consumer; run their suites explicitly
  # so a filtered invocation above can never silently skip them.
  echo "=== [$name] alias analysis + audit suites ==="
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS" \
    -R 'MemAlias|ValueTrack|AliasClaimLog|AliasAudit'
  # Exact software pipelining: the min-II analysis, the branch-and-bound
  # scheduler's verdicts, and the Grade/Apply wiring (Apply through the
  # full audited pipeline, thread-invariant). The fuzz run above already
  # grades every fuzzed loop — auditedOptions() carries
  # ExactPipelining=Grade — so arbitrary generated shapes go through the
  # min-II model under the recompute-and-compare analysis checker too.
  echo "=== [$name] exact pipelining suites ==="
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS" \
    -R 'MinII|ExactPipeliner|ExactGrade|ExactApply|ExactEdge'
  # The predecoded simulator must stay byte-identical to the legacy
  # interpreter — in both compiled dispatch flavours. VSC_DISPATCH steers
  # every DispatchMode::Default run in the child processes, so each pass
  # drives the whole differential suite (and the oracle, which executes
  # over the same predecoded image) through one flavour end to end.
  for dispatch in threaded switch; do
    echo "=== [$name] simulator fast-path + oracle suites, VSC_DISPATCH=$dispatch ==="
    VSC_DISPATCH="$dispatch" \
      ctest --test-dir "$dir" --output-on-failure -j "$JOBS" \
      -R 'Fastpath|SimFastpath|SimDispatch|Oracle'
  done
  # ProfileStore + PDF experiment driver: persistence round-trips, dense
  # parity with the string-keyed path, and thread-count invariance of
  # the whole experiment (run at both counts like the main suite).
  for threads in 1 4; do
    echo "=== [$name] pdf suite, VSC_THREADS=$threads ==="
    VSC_THREADS="$threads" \
      ctest --test-dir "$dir" --output-on-failure -j "$JOBS" \
      -R 'PdfStore|PdfExperiment|PdfGate'
  done
  # Compile-service suites: the sealed-artifact envelope, the LRU cache's
  # rejection discipline, the JsonWriter byte contract, and the service's
  # response determinism across thread counts and request orders.
  for threads in 1 4; do
    echo "=== [$name] compile service suites, VSC_THREADS=$threads ==="
    VSC_THREADS="$threads" \
      ctest --test-dir "$dir" --output-on-failure -j "$JOBS" \
      -R 'SealedArtifact|ArtifactCache|CompileService|JsonWriter'
  done
  # The workload-kernel suites (SPEC six + irregular five): host-reference
  # checksums, the OptLevel x machine x threads matrix, and the audited
  # oracle+alias pipeline per kernel. Run explicitly so a filtered
  # invocation above can never silently skip the kernels that anchor every
  # measured table.
  echo "=== [$name] workload kernel suites ==="
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS" \
    -R 'Workload|AllKernels'
  # Cross-process profile handoff: pdf_workflow trains and persists a
  # profile, vscc compiles the emitted source with it in a separate
  # process; the measured layout gate must reach the identical decision.
  echo "=== [$name] cross-process profile handoff ==="
  local tmp decision_a decision_b
  tmp="$(mktemp -d)"
  "$dir/examples/example_pdf_workflow" --workload=eqntott \
    --emit-source="$tmp/eqntott.c" --save-profile="$tmp/eqntott.vscp" \
    --superblocks > "$tmp/workflow.out"
  decision_a="$(grep '^pdf-layout:' "$tmp/workflow.out")"
  "$dir/examples/example_vscc" "$tmp/eqntott.c" -O3 \
    --load-profile="$tmp/eqntott.vscp" --superblocks -- 1 \
    > /dev/null 2> "$tmp/vscc.err"
  decision_b="$(grep '^pdf-layout:' "$tmp/vscc.err")"
  if [ "$decision_a" != "$decision_b" ]; then
    echo "pdf-layout decision diverged across processes:" >&2
    echo "  pdf_workflow: $decision_a" >&2
    echo "  vscc:         $decision_b" >&2
    exit 1
  fi
  echo "handoff agreed: $decision_a"
  rm -rf "$tmp"
  # Cross-process artifact handoff through the compile service: one vscd
  # process persists a profile, a second feeds it back into a guided
  # compile (response bytes must agree at --threads=1 and 4), and vscc
  # loading the same profile must reach the identical measured layout
  # decision.
  echo "=== [$name] cross-process vscd smoke ==="
  local svc_layout cc_layout
  tmp="$(mktemp -d)"
  printf 'save-profile name=sp kernel=eqntott train=1 out=%s/eqntott.vscp\n' \
    "$tmp" > "$tmp/save.req"
  "$dir/examples/example_vscd" --requests="$tmp/save.req" \
    --out="$tmp/save.out"
  grep -q '^sp ok ' "$tmp/save.out"
  printf 'compile name=g kernel=eqntott level=O3 profile=%s/eqntott.vscp args=1\n' \
    "$tmp" > "$tmp/guided.req"
  "$dir/examples/example_vscd" --requests="$tmp/guided.req" --threads=1 \
    --out="$tmp/guided1.out"
  "$dir/examples/example_vscd" --requests="$tmp/guided.req" --threads=4 \
    --out="$tmp/guided4.out"
  cmp "$tmp/guided1.out" "$tmp/guided4.out"
  grep -q '^g ok ' "$tmp/guided1.out"
  svc_layout="$(sed -n 's/.* layout=\([a-z-]*\).*/\1/p' "$tmp/guided1.out")"
  "$dir/examples/example_pdf_workflow" --workload=eqntott \
    --emit-source="$tmp/eqntott.c" > /dev/null
  "$dir/examples/example_vscc" "$tmp/eqntott.c" -O3 \
    --load-profile="$tmp/eqntott.vscp" -- 1 \
    > /dev/null 2> "$tmp/vscc.err"
  cc_layout="$(sed -n 's/^pdf-layout: \([a-z-]*\)$/\1/p' "$tmp/vscc.err")"
  if [ -z "$svc_layout" ] || [ "$svc_layout" != "$cc_layout" ]; then
    echo "vscd/vscc layout decision diverged: '$svc_layout' vs '$cc_layout'" >&2
    exit 1
  fi
  echo "vscd handoff agreed: layout=$svc_layout"
  rm -rf "$tmp"
}

run_config default "$ROOT/build"
run_config sanitize "$ROOT/build-sanitize" -DVSC_SANITIZE=ON

# A switch-only build (no computed goto compiled in at all) must still pass
# the dispatch/fast-path/oracle suites: the threaded flavour is a pure
# performance knob, never a correctness dependency.
echo "=== [switch-only] configure + build ==="
cmake -B "$ROOT/build-switch" -S "$ROOT" -DVSC_COMPUTED_GOTO=OFF
cmake --build "$ROOT/build-switch" -j "$JOBS"
echo "=== [switch-only] simulator fast-path + oracle + dispatch suites ==="
ctest --test-dir "$ROOT/build-switch" --output-on-failure -j "$JOBS" \
  -R 'Fastpath|SimFastpath|SimDispatch|Oracle'

echo "=== CI green: default + sanitize + switch-only ==="
