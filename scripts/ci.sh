#!/usr/bin/env bash
# CI entry point: build the default and the ASan+UBSan configurations and
# run the full test suite under both.
#
#   scripts/ci.sh [JOBS]
#
# Exits non-zero on the first failing build or test run.
set -euo pipefail

JOBS="${1:-$(nproc)}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

run_config() {
  local name="$1" dir="$2"
  shift 2
  echo "=== [$name] configure ==="
  cmake -B "$dir" -S "$ROOT" "$@"
  echo "=== [$name] build ==="
  cmake --build "$dir" -j "$JOBS"
  echo "=== [$name] ctest ==="
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

run_config default "$ROOT/build"
run_config sanitize "$ROOT/build-sanitize" -DVSC_SANITIZE=ON

echo "=== CI green: default + sanitize ==="
