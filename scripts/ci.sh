#!/usr/bin/env bash
# CI entry point: build the default and the ASan+UBSan configurations and
# run the full test suite under both. Each configuration then re-runs the
# fuzz suite — which carries the semantic audits and the differential
# execution oracle at Boundaries level — on a shifted VSC_FUZZ_SEED, so
# every CI run also validates the pipeline on 40 programs no previous run
# has seen.
#
#   scripts/ci.sh [JOBS]
#
# Exits non-zero on the first failing build or test run.
set -euo pipefail

JOBS="${1:-$(nproc)}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
# Fresh fuzz programs per day; override with VSC_FUZZ_SEED=N scripts/ci.sh.
FUZZ_SEED="${VSC_FUZZ_SEED:-$(( $(date +%Y%m%d) * 100 ))}"

run_config() {
  local name="$1" dir="$2"
  shift 2
  echo "=== [$name] configure ==="
  cmake -B "$dir" -S "$ROOT" "$@"
  echo "=== [$name] build ==="
  cmake --build "$dir" -j "$JOBS"
  echo "=== [$name] ctest ==="
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
  echo "=== [$name] oracle-enabled fuzz, seed base $FUZZ_SEED ==="
  VSC_FUZZ_SEED="$FUZZ_SEED" \
    ctest --test-dir "$dir" --output-on-failure -j "$JOBS" -R Fuzz
}

run_config default "$ROOT/build"
run_config sanitize "$ROOT/build-sanitize" -DVSC_SANITIZE=ON

echo "=== CI green: default + sanitize ==="
